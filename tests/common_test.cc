#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/bitvector.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/serial.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "gtest/gtest.h"

namespace prkb {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    PRKB_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), Status::Code::kNotFound);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::IoError("a"), Status::IoError("a"));
  EXPECT_FALSE(Status::IoError("a") == Status::IoError("b"));
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformInt64HandlesNegativeRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt64(-50, -40);
    EXPECT_GE(v, -50);
    EXPECT_LE(v, -40);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(17);
  EXPECT_EQ(rng.UniformInt(5, 5), 5u);
  EXPECT_EQ(rng.UniformInt64(-3, -3), -3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NormalHasApproximatelyUnitMoments) {
  Rng rng(23);
  double sum = 0, sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------- BitVector

TEST(BitVectorTest, StartsAllClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Count(), 0u);
  for (size_t i = 0; i < bv.size(); ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, SetClearGet) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_EQ(bv.Count(), 4u);
  EXPECT_TRUE(bv.Get(63));
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVectorTest, ResizeWithTrueFillsNewBitsOnly) {
  BitVector bv(10);
  bv.Set(3);
  bv.Resize(100, true);
  EXPECT_TRUE(bv.Get(3));
  EXPECT_FALSE(bv.Get(4));
  for (size_t i = 10; i < 100; ++i) EXPECT_TRUE(bv.Get(i));
  EXPECT_EQ(bv.Count(), 91u);
}

TEST(BitVectorTest, ToIndicesReturnsSortedSetBits) {
  BitVector bv(200);
  bv.Set(5);
  bv.Set(64);
  bv.Set(199);
  EXPECT_EQ(bv.ToIndices(), (std::vector<uint32_t>{5, 64, 199}));
}

TEST(BitVectorTest, AndOrSemantics) {
  BitVector a(70), b(70);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  b.Set(2);
  BitVector both = a;
  both.And(b);
  EXPECT_EQ(both.ToIndices(), (std::vector<uint32_t>{65}));
  BitVector any = a;
  any.Or(b);
  EXPECT_EQ(any.ToIndices(), (std::vector<uint32_t>{1, 2, 65}));
}

TEST(BitVectorTest, ConstructAllTrueHasZeroedTail) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.Count(), 70u);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 4.0);
  EXPECT_DOUBLE_EQ(h.Median(), 2.5);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_NEAR(h.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(h.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(h.Percentile(50), 50.5, 1e-9);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.Add(7.0);
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp("demo");
  tp.SetHeader({"name", "value"});
  tp.AddRow({"a", "1"});
  tp.AddRow({"longer", "22"});
  const std::string s = tp.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::Fmt(int64_t{-7}), "-7");
}

// ---------------------------------------------------------------- Serial

TEST(SerialTest, RoundTripsAllTypes) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x1122334455667788ULL);
  enc.PutVarint(300);
  enc.PutBytes({1, 2, 3});
  enc.PutString("hello");

  Decoder dec(enc.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64, vi;
  std::vector<uint8_t> bytes;
  std::string str;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetVarint(&vi).ok());
  ASSERT_TRUE(dec.GetBytes(&bytes).ok());
  ASSERT_TRUE(dec.GetString(&str).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x1122334455667788ULL);
  EXPECT_EQ(vi, 300u);
  EXPECT_EQ(bytes, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(str, "hello");
  EXPECT_TRUE(dec.Done());
}

TEST(SerialTest, VarintBoundaries) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{16383}, uint64_t{16384}, UINT64_MAX}) {
    Encoder enc;
    enc.PutVarint(v);
    Decoder dec(enc.buffer());
    uint64_t out;
    ASSERT_TRUE(dec.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(SerialTest, TruncatedInputIsCorruption) {
  Encoder enc;
  enc.PutU64(1);
  Decoder dec(enc.buffer().data(), 3);
  uint64_t out;
  EXPECT_EQ(dec.GetU64(&out).code(), Status::Code::kCorruption);
}

TEST(SerialTest, TruncatedBytesIsCorruption) {
  Encoder enc;
  enc.PutVarint(100);  // length prefix promising 100 bytes, none present
  Decoder dec(enc.buffer());
  std::vector<uint8_t> out;
  EXPECT_EQ(dec.GetBytes(&out).code(), Status::Code::kCorruption);
}

TEST(SerialTest, OverlongVarintIsCorruption) {
  std::vector<uint8_t> bad(11, 0x80);
  Decoder dec(bad);
  uint64_t out;
  EXPECT_FALSE(dec.GetVarint(&out).ok());
}

}  // namespace
}  // namespace prkb
