#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/selection.h"
#include "tests/test_util.h"

namespace prkb::core {
namespace {

using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::SelectionStats;
using edbms::TupleId;
using edbms::Value;
using testutil::OracleSelect;
using testutil::RandomTable;
using testutil::Sorted;

constexpr uint64_t kSeed = 777;

PlainPredicate BetweenPred(edbms::AttrId attr, Value lo, Value hi) {
  return PlainPredicate{.attr = attr,
                        .kind = edbms::PredicateKind::kBetween,
                        .lo = lo,
                        .hi = hi};
}

TEST(BetweenTest, ColdBetweenMatchesOracle) {
  Rng data_rng(1);
  PlainTable plain = RandomTable(100, 1, &data_rng, 0, 200);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  const auto got = index.Select(db.MakeBetween(0, 50, 120));
  EXPECT_EQ(Sorted(got), OracleSelect(plain, BetweenPred(0, 50, 120)));
}

TEST(BetweenTest, SingletonChainBandCannotSplit) {
  // The whole satisfied band sits strictly inside the single partition
  // (F,T,F) — the appendix's exceptional case: answer exactly, no split.
  PlainTable plain(1);
  for (Value v : {10, 20, 30, 40, 50}) plain.AddRow({v});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  const auto got = index.Select(db.MakeBetween(0, 18, 35));
  EXPECT_EQ(Sorted(got), (std::vector<TupleId>{1, 2}));
  EXPECT_EQ(index.pop(0).k(), 1u);
}

TEST(BetweenTest, BandAnchoredByTHomogeneousNeighbourSplitsOnce) {
  PlainTable plain(1);
  for (Value v : {10, 20, 30, 40, 50}) plain.AddRow({v});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  // Pre-existing knowledge: {10} | {20,30,40,50}.
  index.Select(db.MakeComparison(0, CompareOp::kLt, 15));
  ASSERT_EQ(index.pop(0).k(), 2u);
  // Band {10, 20}: the big partition is mixed with a T neighbour on one side
  // only, so its T member can be carved off — exactly one new cut.
  const auto got = index.Select(db.MakeBetween(0, 0, 25));
  EXPECT_EQ(Sorted(got), (std::vector<TupleId>{0, 1}));
  EXPECT_EQ(index.pop(0).k(), 3u);
  EXPECT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
}

TEST(BetweenTest, BandInsideSinglePartitionStaysAmbiguous) {
  // The SP sees one mixed partition whose F members could flank the band on
  // either or both sides — no orientation evidence, no split.
  PlainTable plain(1);
  for (Value v : {10, 20, 30, 40, 50}) plain.AddRow({v});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  const auto got = index.Select(db.MakeBetween(0, 0, 25));
  EXPECT_EQ(Sorted(got), (std::vector<TupleId>{0, 1}));
  EXPECT_EQ(index.pop(0).k(), 1u);
}

TEST(BetweenTest, WarmChainBetweenRevealsSamePartialOrderAsTwoComparisons) {
  // Appendix A: in the general case a BETWEEN extends the chain exactly like
  // the two comparisons 'X >= lo' and 'X <= hi'.
  Rng data_rng(3);
  PlainTable plain = RandomTable(200, 1, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  // Warm the chain a bit.
  for (Value c : {Value{100}, Value{500}, Value{900}}) {
    index.Select(db.MakeComparison(0, CompareOp::kLt, c));
  }
  const size_t k_before = index.pop(0).k();
  const auto got = index.Select(db.MakeBetween(0, 300, 700));
  EXPECT_EQ(Sorted(got), OracleSelect(plain, BetweenPred(0, 300, 700)));
  EXPECT_EQ(index.pop(0).k(), k_before + 2);  // one split per band end
  EXPECT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
}

TEST(BetweenTest, EmptyBandReturnsNothingAndLearnsNothing) {
  Rng data_rng(5);
  PlainTable plain = RandomTable(60, 1, &data_rng, 0, 100);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Select(db.MakeComparison(0, CompareOp::kLt, 50));
  const size_t k = index.pop(0).k();
  const auto got = index.Select(db.MakeBetween(0, 2000, 3000));
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(index.pop(0).k(), k);
}

TEST(BetweenTest, BandCoveringEverythingReturnsAll) {
  Rng data_rng(6);
  PlainTable plain = RandomTable(60, 1, &data_rng, 0, 100);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Select(db.MakeComparison(0, CompareOp::kLt, 50));
  const auto got = index.Select(db.MakeBetween(0, -10, 1000));
  EXPECT_EQ(got.size(), 60u);
}

class BetweenPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BetweenPropertyTest, MixedComparisonAndBetweenSequence) {
  const uint64_t seed = GetParam();
  Rng data_rng(seed);
  PlainTable plain = RandomTable(150, 1, &data_rng, 0, 300);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db, PrkbOptions{.seed = seed});
  index.EnableAttr(0);
  Rng qrng(seed ^ 0xBEEF);
  for (int i = 0; i < 60; ++i) {
    if (qrng.Bernoulli(0.5)) {
      const Value lo = qrng.UniformInt64(0, 300);
      const Value hi = lo + qrng.UniformInt64(0, 80);
      const auto got = index.Select(db.MakeBetween(0, lo, hi));
      ASSERT_EQ(Sorted(got), OracleSelect(plain, BetweenPred(0, lo, hi)))
          << "between query " << i;
    } else {
      const Value c = qrng.UniformInt64(0, 300);
      PlainPredicate p{.attr = 0, .op = CompareOp::kGt, .lo = c};
      const auto got = index.Select(db.MakeComparison(0, p.op, c));
      ASSERT_EQ(Sorted(got), OracleSelect(plain, p)) << "cmp query " << i;
    }
    ASSERT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok())
        << "after query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BetweenPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(BetweenTest, CheaperThanFullScanOnWarmChain) {
  Rng data_rng(9);
  PlainTable plain = RandomTable(3000, 1, &data_rng, 0, 1000000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  Rng qrng(10);
  for (int i = 0; i < 100; ++i) {
    index.Select(
        db.MakeComparison(0, CompareOp::kLt, qrng.UniformInt64(0, 1000000)));
  }
  SelectionStats stats;
  index.Select(db.MakeBetween(0, 400000, 500000), &stats);
  EXPECT_LT(stats.qpf_uses, 3000u / 2);
}

}  // namespace
}  // namespace prkb::core
