// ShardedPrkbIndex: routing correctness (selections identical to an
// unsharded index for every shard count), exact winner sets for co-located
// and cross-shard MD/SD+ queries, insert/delete fanning, and concurrent
// writers on one shard not blocking readers on another.

#include <atomic>
#include <thread>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/shard.h"
#include "tests/test_util.h"

namespace prkb {
namespace {

using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PredicateKind;
using edbms::TupleId;
using edbms::Value;

PlainPredicate Cmp(edbms::AttrId attr, CompareOp op, Value c) {
  PlainPredicate p;
  p.attr = attr;
  p.op = op;
  p.lo = c;
  return p;
}

TEST(ShardTest, RoutingIsStableAndCoversAllShards) {
  Rng rng(1);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(
      5, testutil::RandomTable(10, 1, &rng));
  core::ShardedPrkbIndex index(&db, 4);
  ASSERT_EQ(index.num_shards(), 4u);
  std::vector<bool> hit(4, false);
  for (edbms::AttrId a = 0; a < 64; ++a) {
    const size_t s = index.ShardOf(a);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, index.ShardOf(a));  // stable
    hit[s] = true;
  }
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(hit[s]) << "no attribute routed to shard " << s;
  }
}

TEST(ShardTest, SelectionsMatchOracleForEveryShardCount) {
  Rng rng(7);
  const auto plain = testutil::RandomTable(300, 4, &rng, 0, 999);
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    auto db = edbms::CipherbaseEdbms::FromPlainTable(21, plain);
    core::ShardedPrkbIndex index(&db, shards);
    for (edbms::AttrId a = 0; a < 4; ++a) index.EnableAttr(a);
    for (int i = 0; i < 20; ++i) {
      const auto attr = static_cast<edbms::AttrId>(i % 4);
      const Value c = static_cast<Value>((i * 157) % 1000);
      const PlainPredicate p = Cmp(attr, CompareOp::kLt, c);
      const auto td = db.MakeComparison(p.attr, p.op, p.lo);
      EXPECT_EQ(testutil::Sorted(index.Select(td)),
                testutil::OracleSelect(plain, p))
          << "shards=" << shards << " op=" << i;
    }
  }
}

TEST(ShardTest, CrossShardMdAndSdPlusAreExact) {
  Rng rng(9);
  const auto plain = testutil::RandomTable(250, 4, &rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(31, plain);
  // 4 shards over 4 attrs: with the hash spread, the conjunctions below are
  // near-certainly cross-shard (RoutingIsStableAndCoversAllShards above
  // guarantees the hash doesn't collapse to one shard for small attr ids).
  core::ShardedPrkbIndex index(&db, 4);
  for (edbms::AttrId a = 0; a < 4; ++a) index.EnableAttr(a);

  const std::vector<PlainPredicate> preds = {
      Cmp(0, CompareOp::kLt, 700),
      Cmp(1, CompareOp::kGt, 150),
      Cmp(2, CompareOp::kLe, 900),
      Cmp(3, CompareOp::kGe, 100),
  };
  std::vector<edbms::Trapdoor> tds;
  for (const auto& p : preds) {
    tds.push_back(db.MakeComparison(p.attr, p.op, p.lo));
  }
  const auto expect = testutil::OracleSelectAll(plain, preds);
  EXPECT_EQ(testutil::Sorted(index.SelectRangeMd(tds)), expect);
  EXPECT_EQ(testutil::Sorted(index.SelectRangeSdPlus(tds)), expect);
}

TEST(ShardTest, ColocatedMdRoutesWhole) {
  Rng rng(11);
  const auto plain = testutil::RandomTable(200, 2, &rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(41, plain);
  core::ShardedPrkbIndex index(&db, 1);  // everything co-located
  index.EnableAttr(0);
  index.EnableAttr(1);

  const uint64_t colocated_before =
      core::ShardMetrics::Get().md_colocated->value();
  const std::vector<PlainPredicate> preds = {
      Cmp(0, CompareOp::kLt, 600),
      Cmp(1, CompareOp::kGt, 200),
  };
  std::vector<edbms::Trapdoor> tds;
  for (const auto& p : preds) {
    tds.push_back(db.MakeComparison(p.attr, p.op, p.lo));
  }
  EXPECT_EQ(testutil::Sorted(index.SelectRangeMd(tds)),
            testutil::OracleSelectAll(plain, preds));
  EXPECT_EQ(core::ShardMetrics::Get().md_colocated->value(),
            colocated_before + 1);
}

TEST(ShardTest, InsertAndDeleteFanAcrossShards) {
  Rng rng(13);
  const auto plain = testutil::RandomTable(150, 4, &rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(51, plain);
  core::ShardedPrkbIndex index(&db, 4);
  for (edbms::AttrId a = 0; a < 4; ++a) index.EnableAttr(a);

  // Carve structure so placement does real work on every shard.
  for (edbms::AttrId a = 0; a < 4; ++a) {
    index.Select(db.MakeComparison(a, CompareOp::kLt, 500));
  }

  const TupleId tid = index.Insert({111, 222, 333, 444});
  for (edbms::AttrId a = 0; a < 4; ++a) {
    const auto got = index.Select(db.MakeComparison(a, CompareOp::kLt, 999));
    EXPECT_TRUE(std::find(got.begin(), got.end(), tid) != got.end())
        << "inserted tuple missing from attr " << a << " selection";
  }

  index.Delete(tid);
  for (edbms::AttrId a = 0; a < 4; ++a) {
    const auto got = index.Select(db.MakeComparison(a, CompareOp::kLt, 999));
    EXPECT_TRUE(std::find(got.begin(), got.end(), tid) == got.end())
        << "deleted tuple still in attr " << a << " selection";
  }

  // Per-shard tallies reflect the fan: exactly one placement on every shard
  // that owns at least one chain (4 attrs may hash into fewer than 4 shards).
  size_t populated = 0;
  size_t total_placements = 0;
  for (const auto& report : index.Describe()) {
    if (report.chains > 0) ++populated;
    total_placements += report.placements;
  }
  EXPECT_GE(populated, 2u);
  EXPECT_EQ(total_placements, populated);
}

TEST(ShardTest, DescribeReportsEveryShard) {
  Rng rng(17);
  const auto plain = testutil::RandomTable(100, 4, &rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(61, plain);
  core::ShardedPrkbIndex index(&db, 4);
  for (edbms::AttrId a = 0; a < 4; ++a) index.EnableAttr(a);
  index.Select(db.MakeComparison(0, CompareOp::kLt, 500));

  const auto reports = index.Describe();
  ASSERT_EQ(reports.size(), 4u);
  size_t chains = 0;
  uint64_t selects = 0;
  for (const auto& r : reports) {
    chains += r.chains;
    selects += r.selects;
  }
  EXPECT_EQ(chains, 4u);
  EXPECT_EQ(selects, 1u);
  EXPECT_EQ(index.EnabledAttrs(), (std::vector<edbms::AttrId>{0, 1, 2, 3}));
}

TEST(ShardTest, WritersOnOneShardDoNotCorruptReadersOnAnother) {
  Rng rng(19);
  const auto plain = testutil::RandomTable(300, 4, &rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(71, plain);
  core::ShardedPrkbIndex index(&db, 4);
  for (edbms::AttrId a = 0; a < 4; ++a) index.EnableAttr(a);
  // Warm each chain and the repeat cache.
  std::vector<edbms::Trapdoor> hot;
  std::vector<PlainPredicate> hot_preds;
  for (edbms::AttrId a = 0; a < 4; ++a) {
    hot_preds.push_back(Cmp(a, CompareOp::kLt, 500));
    hot.push_back(db.MakeComparison(a, CompareOp::kLt, 500));
    index.Select(hot[a]);
  }

  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (int i = 0; i < 15; ++i) {
      const TupleId tid = index.Insert(
          {static_cast<Value>(i), static_cast<Value>(i * 2),
           static_cast<Value>(i * 3), static_cast<Value>(i * 5)});
      index.Delete(tid);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        const auto got = testutil::Sorted(index.Select(hot[t]));
        // Live-row oracle recomputed per read: concurrent inserts/deletes
        // only ever touch rows satisfying/unsatisfying transiently, so every
        // read must be a subset of "original winners + writer's rows".
        for (const TupleId tid : got) {
          if (tid < plain.num_rows() &&
              !hot_preds[t].Satisfies(plain.at(t, tid))) {
            failed = true;
          }
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace prkb
