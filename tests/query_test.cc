#include "query/planner.h"

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace prkb::query {
namespace {

using edbms::CipherbaseEdbms;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::TupleId;
using testutil::OracleSelectAll;
using testutil::Sorted;

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, TokenisesAllKinds) {
  auto tokens = Lex("SELECT * FROM t WHERE a <= -42 AND b BETWEEN 1 AND 2;");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  ASSERT_EQ(t.size(), 15u);  // 14 tokens + end
  EXPECT_EQ(t[0].kind, Token::Kind::kKeyword);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].kind, Token::Kind::kStar);
  EXPECT_EQ(t[3].kind, Token::Kind::kIdentifier);
  EXPECT_EQ(t[6].text, "<=");
  EXPECT_EQ(t[7].number, -42);
  EXPECT_EQ(t[14].kind, Token::Kind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("select * From t wHeRe x < 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[4].text, "WHERE");
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Lex("SELECT * FROM t WHERE a ~ 3").ok());
}

TEST(LexerTest, RejectsOverflowingNumbers) {
  EXPECT_FALSE(Lex("SELECT * FROM t WHERE a < 99999999999999999999999").ok());
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, ParsesSimpleSelect) {
  auto stmt = Parse("SELECT * FROM readings WHERE temp > 20 AND temp < 30");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->table, "readings");
  ASSERT_EQ(stmt->conditions.size(), 2u);
  EXPECT_EQ(stmt->conditions[0].column, "temp");
  EXPECT_EQ(stmt->conditions[0].op, edbms::CompareOp::kGt);
  EXPECT_EQ(stmt->conditions[0].lo, 20);
}

TEST(ParserTest, ParsesBetween) {
  auto stmt = Parse("SELECT * FROM t WHERE x BETWEEN 5 AND 9");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->conditions.size(), 1u);
  EXPECT_EQ(stmt->conditions[0].kind, Condition::Kind::kBetween);
  EXPECT_EQ(stmt->conditions[0].lo, 5);
  EXPECT_EQ(stmt->conditions[0].hi, 9);
}

TEST(ParserTest, ParsesNoWhere) {
  auto stmt = Parse("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->conditions.empty());
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(Parse("SELECT a FROM t").ok());           // projection
  EXPECT_FALSE(Parse("SELECT * t").ok());                // missing FROM
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE").ok());     // empty WHERE
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a <").ok()); // missing literal
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a = 1 OR b = 2").ok());  // OR
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a BETWEEN 9 AND 5").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE a < 1 garbage").ok());
}

// ---------------------------------------------------------------- Planner

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : plain_(MakePlain()),
        db_(CipherbaseEdbms::FromPlainTable(5, plain_)),
        index_(&db_) {
    catalog_.RegisterTable("readings", {"temp", "humidity"});
    index_.EnableAttr(0);
    index_.EnableAttr(1);
  }

  static PlainTable MakePlain() {
    Rng rng(1);
    return testutil::RandomTable(200, 2, &rng, 0, 100);
  }

  PlainTable plain_;
  CipherbaseEdbms db_;
  core::PrkbIndex index_;
  Catalog catalog_;
};

TEST_F(PlannerTest, SingleComparisonRoutesToSd) {
  Planner planner(&catalog_, &db_, &index_);
  auto res = planner.ExecuteSql("SELECT * FROM readings WHERE temp < 50");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->plan, "prkb-sd");
  PlainPredicate p{.attr = 0, .op = edbms::CompareOp::kLt, .lo = 50};
  EXPECT_EQ(Sorted(res->rows), OracleSelectAll(plain_, {p}));
}

TEST_F(PlannerTest, BetweenRoutesToBetween) {
  Planner planner(&catalog_, &db_, &index_);
  auto res =
      planner.ExecuteSql("SELECT * FROM readings WHERE temp BETWEEN 20 AND 60");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->plan, "prkb-between");
  PlainPredicate p{.attr = 0, .kind = edbms::PredicateKind::kBetween,
                   .lo = 20, .hi = 60};
  EXPECT_EQ(Sorted(res->rows), OracleSelectAll(plain_, {p}));
}

TEST_F(PlannerTest, BoxConjunctionCollapsesToSdPlusOverBetweens) {
  // Old fixed rule: 4 comparisons → PRKB(MD) with 4 trapdoors. The
  // cost-based planner first collapses each attribute's pair into one
  // BETWEEN, leaving SD+ over 2 trapdoors as the cheapest capable route.
  Planner planner(&catalog_, &db_, &index_);
  auto res = planner.ExecuteSql(
      "SELECT * FROM readings WHERE temp > 20 AND temp < 60 "
      "AND humidity > 30 AND humidity < 70");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->plan, "prkb-sd+(2 trapdoors)");
  std::vector<PlainPredicate> ps = {
      {.attr = 0, .op = edbms::CompareOp::kGt, .lo = 20},
      {.attr = 0, .op = edbms::CompareOp::kLt, .lo = 60},
      {.attr = 1, .op = edbms::CompareOp::kGt, .lo = 30},
      {.attr = 1, .op = edbms::CompareOp::kLt, .lo = 70},
  };
  EXPECT_EQ(Sorted(res->rows), OracleSelectAll(plain_, ps));
}

TEST_F(PlannerTest, MultiAttrComparisonsRouteToMd) {
  // One-sided comparisons on distinct attributes stay MD-capable after
  // collapsing (nothing to merge), and the grid estimate undercuts SD+.
  Planner planner(&catalog_, &db_, &index_);
  auto res = planner.ExecuteSql(
      "SELECT * FROM readings WHERE temp > 20 AND humidity < 70");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->plan, "prkb-md(2 trapdoors)");
  std::vector<PlainPredicate> ps = {
      {.attr = 0, .op = edbms::CompareOp::kGt, .lo = 20},
      {.attr = 1, .op = edbms::CompareOp::kLt, .lo = 70},
  };
  EXPECT_EQ(Sorted(res->rows), OracleSelectAll(plain_, ps));
}

TEST_F(PlannerTest, SameAttrPairCollapsesToSinglePredicate) {
  // x > 5 AND x < 20 is one interval: the planner compiles a single BETWEEN
  // trapdoor and takes the Sec. 5 single-predicate path, not SD+/MD.
  Planner planner(&catalog_, &db_, &index_);
  auto res = planner.ExecuteSql(
      "SELECT * FROM readings WHERE temp > 20 AND temp < 60");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->plan, "prkb-between");
  EXPECT_NE(res->physical.root.detail.find("collapsed 2 conjuncts"),
            std::string::npos);
  std::vector<PlainPredicate> ps = {
      {.attr = 0, .op = edbms::CompareOp::kGt, .lo = 20},
      {.attr = 0, .op = edbms::CompareOp::kLt, .lo = 60},
  };
  EXPECT_EQ(Sorted(res->rows), OracleSelectAll(plain_, ps));
}

TEST_F(PlannerTest, ContradictionShortCircuitsToEmpty) {
  Planner planner(&catalog_, &db_, &index_);
  const uint64_t uses_before = db_.uses();
  auto res = planner.ExecuteSql(
      "SELECT * FROM readings WHERE temp > 60 AND temp < 20");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->plan, "empty(contradiction)");
  EXPECT_TRUE(res->rows.empty());
  EXPECT_EQ(res->stats.qpf_uses, 0u);
  EXPECT_EQ(db_.uses(), uses_before);  // provably empty: zero QPF spent
}

TEST_F(PlannerTest, SingleElementAndListTakesSinglePredicatePath) {
  // Degenerate conjunction: one conjunct must behave exactly like the bare
  // predicate (Sec. 5 path), with the trapdoor passed through verbatim.
  Planner planner(&catalog_, &db_, &index_);
  auto res = planner.ExecuteSql("SELECT * FROM readings WHERE temp >= 42");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->plan, "prkb-sd");
  EXPECT_EQ(res->physical.root.op, exec::PlanOp::kPredicateSelect);
  PlainPredicate p{.attr = 0, .op = edbms::CompareOp::kGe, .lo = 42};
  EXPECT_EQ(Sorted(res->rows), OracleSelectAll(plain_, {p}));
}

TEST_F(PlannerTest, MixedKindsRouteToSdPlus) {
  Planner planner(&catalog_, &db_, &index_);
  auto res = planner.ExecuteSql(
      "SELECT * FROM readings WHERE temp BETWEEN 20 AND 60 AND humidity < 50");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->plan, "prkb-sd+(2 trapdoors)");
  std::vector<PlainPredicate> ps = {
      {.attr = 0, .kind = edbms::PredicateKind::kBetween, .lo = 20, .hi = 60},
      {.attr = 1, .op = edbms::CompareOp::kLt, .lo = 50},
  };
  EXPECT_EQ(Sorted(res->rows), OracleSelectAll(plain_, ps));
}

TEST_F(PlannerTest, NoPredicateReturnsAllLiveRows) {
  Planner planner(&catalog_, &db_, &index_);
  db_.Delete(7);
  auto res = planner.ExecuteSql("SELECT * FROM readings");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows.size(), 199u);
  EXPECT_EQ(res->stats.qpf_uses, 0u);
}

TEST_F(PlannerTest, ExplainBuildsPlanWithoutExecuting) {
  Planner planner(&catalog_, &db_, &index_);
  const uint64_t uses_before = db_.uses();
  auto res = planner.ExecuteSql(
      "EXPLAIN SELECT * FROM readings WHERE temp < 50");
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->explain_only);
  EXPECT_TRUE(res->rows.empty());
  EXPECT_EQ(res->stats.qpf_uses, 0u);
  EXPECT_EQ(db_.uses(), uses_before);  // planning is pure: no QPF spent
  const std::string rendered = res->Explain();
  EXPECT_NE(rendered.find("plan: prkb-sd"), std::string::npos);
  EXPECT_NE(rendered.find("PredicateSelect"), std::string::npos);
  EXPECT_NE(rendered.find("QFilterProbe"), std::string::npos);
  EXPECT_NE(rendered.find("est "), std::string::npos);
  EXPECT_NE(rendered.find("temp < 50"), std::string::npos);
  // No operator executed, so no actuals are rendered.
  EXPECT_EQ(rendered.find("actual"), std::string::npos);
}

TEST_F(PlannerTest, ExecutedPlanCarriesActualCostsPerOperator) {
  Planner planner(&catalog_, &db_, &index_);
  auto res = planner.ExecuteSql("SELECT * FROM readings WHERE temp < 50");
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->explain_only);
  const exec::PlanNode& root = res->physical.root;
  EXPECT_TRUE(root.actual.executed);
  EXPECT_EQ(root.actual.qpf_uses, res->stats.qpf_uses);
  const exec::PlanNode* probe = root.Child(exec::PlanOp::kQFilterProbe);
  const exec::PlanNode* scan = root.Child(exec::PlanOp::kPartitionScan);
  ASSERT_NE(probe, nullptr);
  ASSERT_NE(scan, nullptr);
  EXPECT_TRUE(probe->actual.executed);
  EXPECT_TRUE(scan->actual.executed);
  // The stage split is exhaustive: probes + scans account for every use.
  EXPECT_EQ(probe->actual.qpf_uses + scan->actual.qpf_uses,
            root.actual.qpf_uses);
  EXPECT_NE(res->Explain().find("actual"), std::string::npos);
}

TEST_F(PlannerTest, StatsAreConsistentAcrossAllRoutes) {
  Planner planner(&catalog_, &db_, &index_);
  const char* queries[] = {
      "SELECT * FROM readings",                                  // full-table
      "SELECT * FROM readings WHERE temp < 50",                  // single
      "SELECT * FROM readings WHERE temp BETWEEN 20 AND 60",     // between
      "SELECT * FROM readings WHERE temp > 20 AND humidity < 70",  // MD
      "SELECT * FROM readings WHERE temp BETWEEN 20 AND 60 "
      "AND humidity < 50",                                       // SD+
      "SELECT * FROM readings WHERE temp > 60 AND temp < 20",    // empty
  };
  for (const char* sql : queries) {
    const uint64_t uses_before = db_.uses();
    const uint64_t trips_before = db_.round_trips();
    auto res = planner.ExecuteSql(sql);
    ASSERT_TRUE(res.ok()) << sql;
    // Field-by-field: every route reports the whole operation's QPF delta,
    // never a partial or per-trapdoor aggregate.
    EXPECT_EQ(res->stats.qpf_uses, db_.uses() - uses_before) << sql;
    EXPECT_EQ(res->stats.qpf_round_trips, db_.round_trips() - trips_before)
        << sql;
    EXPECT_LE(res->stats.qpf_batches, res->stats.qpf_round_trips) << sql;
    EXPECT_GE(res->stats.millis, 0.0) << sql;
    EXPECT_LE(res->stats.cache_hits + res->stats.cache_misses, 4u) << sql;
  }
}

TEST_F(PlannerTest, UnknownTableAndColumnFail) {
  Planner planner(&catalog_, &db_, &index_);
  EXPECT_EQ(planner.ExecuteSql("SELECT * FROM nosuch").status().code(),
            Status::Code::kNotFound);
  EXPECT_EQ(planner.ExecuteSql("SELECT * FROM readings WHERE nope < 1")
                .status()
                .code(),
            Status::Code::kNotFound);
}

}  // namespace
}  // namespace prkb::query
