// Deterministic edge cases for the core algorithms, complementing the
// randomized property sweeps in selection_test.cc / fuzz_test.cc.

#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/qfilter.h"
#include "prkb/qscan.h"
#include "prkb/selection.h"
#include "tests/test_util.h"

namespace prkb::core {
namespace {

using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainTable;
using edbms::TupleId;
using edbms::Value;
using testutil::Sorted;

constexpr uint64_t kSeed = 31415;

PlainTable Column(std::initializer_list<Value> values) {
  PlainTable t(1);
  for (Value v : values) t.AddRow({v});
  return t;
}

// ------------------------------------------------------------- QFilter

TEST(QFilterEdgeTest, BoundaryCaseWithFalseLabelHasNoWinners) {
  // Warm a 3-partition chain, then query a range matching nothing: both end
  // samples answer 0, middle partitions are sure-False.
  auto plain = Column({10, 20, 30, 40, 50, 60});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Select(db.MakeComparison(0, CompareOp::kLt, 25));
  index.Select(db.MakeComparison(0, CompareOp::kLt, 45));
  ASSERT_EQ(index.pop(0).k(), 3u);

  Rng rng(1);
  const auto td = db.MakeComparison(0, CompareOp::kGt, 100);
  const auto f = QFilter(index.pop(0), td, &db, &rng);
  EXPECT_TRUE(f.boundary_case);
  EXPECT_FALSE(f.label_first);
  EXPECT_FALSE(f.label_last);
  EXPECT_FALSE(f.HasWinners());
  EXPECT_EQ(f.ns_a, 0u);
  EXPECT_EQ(f.ns_b, 2u);
}

TEST(QFilterEdgeTest, BoundaryCaseWithTrueLabelWinsTheMiddle) {
  auto plain = Column({10, 20, 30, 40, 50, 60});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Select(db.MakeComparison(0, CompareOp::kLt, 25));
  index.Select(db.MakeComparison(0, CompareOp::kLt, 45));

  Rng rng(1);
  const auto td = db.MakeComparison(0, CompareOp::kLt, 100);  // everything
  const auto f = QFilter(index.pop(0), td, &db, &rng);
  EXPECT_TRUE(f.boundary_case);
  EXPECT_TRUE(f.label_first);
  // Winners = all middle partitions, ends stay NS.
  EXPECT_EQ(f.win_begin, 1u);
  EXPECT_EQ(f.win_end, 2u);
}

TEST(QFilterEdgeTest, RecursiveCaseWinnersFollowTheTrueSide) {
  auto plain = Column({10, 20, 30, 40, 50, 60});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  for (Value c : {Value{15}, Value{25}, Value{35}, Value{45}, Value{55}}) {
    index.Select(db.MakeComparison(0, CompareOp::kLt, c));
  }
  ASSERT_EQ(index.pop(0).k(), 6u);

  // 'X > 35': chain-side orientation is hidden, but winners must be exactly
  // the sure-True positions and the NS pair adjacent.
  Rng rng(2);
  const auto td = db.MakeComparison(0, CompareOp::kGt, 35);
  const auto f = QFilter(index.pop(0), td, &db, &rng);
  EXPECT_FALSE(f.boundary_case);
  EXPECT_EQ(f.ns_b, f.ns_a + 1);
  // The cut is at an existing boundary: winner range + NS pair must cover
  // {40,50,60} exactly once QScan resolves; here check the filter's claim.
  size_t win_tuples = 0;
  for (size_t p = f.win_begin; p < f.win_end; ++p) {
    win_tuples += index.pop(0).members_at(p).Size();
  }
  EXPECT_EQ(win_tuples, 2u);  // {50}, {60}; {40} sits in the NS pair
}

// --------------------------------------------------------------- QScan

TEST(QScanEdgeTest, EarlyStopIncludesWholePartnerWhenTrue) {
  // k=2 chain, predicate splitting partition 0: partner (position 1) is
  // T-homogeneous and must be bulk-included without scanning.
  auto plain = Column({10, 20, 30, 40});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Select(db.MakeComparison(0, CompareOp::kLt, 25));  // {10,20}|{30,40}
  const Pop& pop = index.pop(0);
  ASSERT_EQ(pop.k(), 2u);

  // Determine which chain end holds the small values to build a predicate
  // whose separating point is inside the small-values partition.
  const bool small_first =
      plain.at(0, pop.members_at(0).Select(0)) < plain.at(0, pop.members_at(1).Select(0));
  const auto td = db.MakeComparison(0, CompareOp::kGt, 15);  // {20,30,40}
  Rng rng(3);
  const auto f = QFilter(pop, td, &db, &rng);
  const auto s = QScan(pop, f, td, &db);
  EXPECT_EQ(Sorted(s.winners), (std::vector<TupleId>{1, 2, 3}));
  EXPECT_TRUE(s.split_found);
  EXPECT_EQ(s.split_pos, small_first ? f.ns_a : f.ns_b);
}

// ------------------------------------------------------------ Selection

TEST(SelectionEdgeTest, AllEqualValuesNeverLearnAnything) {
  auto plain = Column({7, 7, 7, 7, 7});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  for (Value c : {Value{6}, Value{7}, Value{8}}) {
    for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                         CompareOp::kGe}) {
      const auto got = index.Select(db.MakeComparison(0, op, c));
      edbms::PlainPredicate p{.attr = 0, .op = op, .lo = c};
      EXPECT_EQ(Sorted(got), testutil::OracleSelect(plain, p));
    }
  }
  // Equal values can never be separated: the chain must still be POP_1.
  EXPECT_EQ(index.pop(0).k(), 1u);
}

TEST(SelectionEdgeTest, NegativeDomainWorks) {
  auto plain = Column({-100, -50, 0, 50, 100});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  EXPECT_EQ(Sorted(index.Select(db.MakeComparison(0, CompareOp::kLt, -25))),
            (std::vector<TupleId>{0, 1}));
  EXPECT_EQ(Sorted(index.Select(db.MakeComparison(0, CompareOp::kGe, 0))),
            (std::vector<TupleId>{2, 3, 4}));
  EXPECT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
}

TEST(SelectionEdgeTest, LeGeEquivalenceWithLtGtOnGaps) {
  // With no value in (20, 30), 'X <= 20' and 'X < 30' are trapdoor-
  // equivalent (Def. 4.3): four queries, one cut.
  auto plain = Column({10, 20, 30, 40});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Select(db.MakeComparison(0, CompareOp::kLe, 20));
  index.Select(db.MakeComparison(0, CompareOp::kLt, 30));
  index.Select(db.MakeComparison(0, CompareOp::kGe, 30));
  index.Select(db.MakeComparison(0, CompareOp::kGt, 25));
  EXPECT_EQ(index.pop(0).k(), 2u);
}

TEST(SelectionEdgeTest, SingleTupleTable) {
  auto plain = Column({42});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  EXPECT_EQ(index.Select(db.MakeComparison(0, CompareOp::kLe, 42)).size(),
            1u);
  EXPECT_TRUE(index.Select(db.MakeComparison(0, CompareOp::kGt, 42)).empty());
  EXPECT_EQ(index.pop(0).k(), 1u);
}

// ------------------------------------------------------------- Multidim

TEST(MultidimEdgeTest, TinyBoxWithBothNsPairsInOnePartition) {
  // A box so small that for each attribute both the low and high trapdoor
  // cut the SAME partition — the sibling-split regrouping path in
  // multidim.cc's updatePRKB.
  PlainTable plain(2);
  for (Value x = 0; x < 40; ++x) plain.AddRow({x, 39 - x});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  // Eager updates: the lazy (paper) mode only splits fully-covered NS
  // partitions, and cross-predicate short-circuiting leaves the second cut
  // of each dimension uncovered on a cold chain.
  PrkbIndex index(&db, PrkbOptions{.seed = 1, .eager_md_update = true});
  index.EnableAttr(0);
  index.EnableAttr(1);

  std::vector<edbms::Trapdoor> tds = {
      db.MakeComparison(0, CompareOp::kGt, 10),
      db.MakeComparison(0, CompareOp::kLt, 14),
      db.MakeComparison(1, CompareOp::kGt, 25),
      db.MakeComparison(1, CompareOp::kLt, 29),
  };
  const auto got = index.SelectRangeMd(tds);
  // x in (10,14) and y=39-x in (25,29) -> x in {11,12,13}.
  EXPECT_EQ(Sorted(got), (std::vector<TupleId>{11, 12, 13}));
  EXPECT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
  EXPECT_TRUE(index.pop(1).ValidateAgainstPlain(plain.column(1)).ok());
  // Both cuts of attribute 0 must have landed despite sharing a partition.
  EXPECT_GE(index.pop(0).k(), 3u);
}

TEST(MultidimEdgeTest, RepeatedIdenticalBoxesConverge) {
  Rng data_rng(5);
  auto plain = testutil::RandomTable(200, 2, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);

  uint64_t first_cost = 0, last_cost = 0;
  size_t k_after_two = 0;
  for (int i = 0; i < 6; ++i) {
    std::vector<edbms::Trapdoor> tds = {
        db.MakeComparison(0, CompareOp::kGt, 200),
        db.MakeComparison(0, CompareOp::kLt, 600),
        db.MakeComparison(1, CompareOp::kGt, 300),
        db.MakeComparison(1, CompareOp::kLt, 700),
    };
    edbms::SelectionStats st;
    index.SelectRangeMd(tds, &st);
    if (i == 0) first_cost = st.qpf_uses;
    last_cost = st.qpf_uses;
    if (i == 1) k_after_two = index.pop(0).k() + index.pop(1).k();
  }
  // Repeats are trapdoor-equivalent: no chain growth after the cuts landed
  // (Def. 4.3). The steady-state cost does NOT go to zero — the paper's
  // design rescans the NS pairs every time — but it is bounded by the NS
  // band sizes, far below the 4n an unindexed conjunction could spend.
  EXPECT_EQ(index.pop(0).k() + index.pop(1).k(), k_after_two);
  EXPECT_GT(last_cost, 0u);
  EXPECT_LT(last_cost, 4 * 200u);
  (void)first_cost;
}

}  // namespace
}  // namespace prkb::core
