#include <cstring>
#include <string>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/cipher.h"
#include "crypto/hmac.h"
#include "crypto/prf.h"
#include "crypto/sha256.h"
#include "gtest/gtest.h"

namespace prkb::crypto {
namespace {

std::string ToHex(const uint8_t* data, size_t n) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    out += kHex[data[i] >> 4];
    out += kHex[data[i] & 0xF];
  }
  return out;
}

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(
        static_cast<uint8_t>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

// ---------------------------------------------------------------- AES-128

// FIPS-197 Appendix C.1 known-answer test.
TEST(Aes128Test, Fips197AppendixC1) {
  Aes128::Key key;
  for (int i = 0; i < 16; ++i) key[i] = static_cast<uint8_t>(i);
  uint8_t pt[16];
  for (int i = 0; i < 16; ++i) pt[i] = static_cast<uint8_t>(i * 0x11);
  Aes128 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt, ct);
  EXPECT_EQ(ToHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
  uint8_t back[16];
  aes.DecryptBlock(ct, back);
  EXPECT_EQ(0, std::memcmp(back, pt, 16));
}

// FIPS-197 Appendix B example vector.
TEST(Aes128Test, Fips197AppendixB) {
  const auto key_bytes = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128::Key key;
  std::memcpy(key.data(), key_bytes.data(), 16);
  const auto pt = FromHex("3243f6a8885a308d313198a2e0370734");
  Aes128 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128Test, EncryptDecryptRoundTripRandomBlocks) {
  Aes128::Key key{};
  key[0] = 0x42;
  Aes128 aes(key);
  uint8_t block[16] = {0};
  for (int iter = 0; iter < 100; ++iter) {
    uint8_t ct[16], back[16];
    aes.EncryptBlock(block, ct);
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(0, std::memcmp(block, back, 16));
    // Chain: next plaintext is this ciphertext.
    std::memcpy(block, ct, 16);
  }
}

TEST(Aes128Test, InPlaceEncryptionAllowed) {
  Aes128::Key key{};
  Aes128 aes(key);
  uint8_t a[16] = {1, 2, 3};
  uint8_t b[16] = {1, 2, 3};
  uint8_t out[16];
  aes.EncryptBlock(a, a);  // in place
  aes.EncryptBlock(b, out);
  EXPECT_EQ(0, std::memcmp(a, out, 16));
}

// -------------------------------------------------------------------- CTR

TEST(AesCtrTest, CryptIsAnInvolution) {
  AesCtr ctr(Aes128::Key{1, 2, 3, 4});
  std::vector<uint8_t> msg(100);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<uint8_t>(i);
  auto enc = msg;
  ctr.Crypt(/*nonce=*/99, enc.data(), enc.size());
  EXPECT_NE(enc, msg);
  ctr.Crypt(99, enc.data(), enc.size());
  EXPECT_EQ(enc, msg);
}

TEST(AesCtrTest, DistinctNoncesGiveDistinctStreams) {
  AesCtr ctr(Aes128::Key{7});
  uint64_t a = ctr.CryptWord(1, 0);
  uint64_t b = ctr.CryptWord(2, 0);
  EXPECT_NE(a, b);
}

TEST(AesCtrTest, CryptWordMatchesCryptBuffer) {
  AesCtr ctr(Aes128::Key{9});
  uint64_t word = 0x0123456789ABCDEFULL;
  const uint64_t enc_word = ctr.CryptWord(5, word);
  uint8_t buf[8];
  std::memcpy(buf, &word, 8);
  ctr.Crypt(5, buf, 8);
  uint64_t enc_buf;
  std::memcpy(&enc_buf, buf, 8);
  EXPECT_EQ(enc_word, enc_buf);
}

TEST(AesEcbTest, MultiBlockRoundTrip) {
  AesEcb ecb(Aes128::Key{3});
  std::vector<uint8_t> msg(64);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<uint8_t>(7 * i);
  std::vector<uint8_t> ct(64), back(64);
  ecb.Encrypt(msg.data(), ct.data(), 64);
  ecb.Decrypt(ct.data(), back.data(), 64);
  EXPECT_EQ(back, msg);
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, EmptyString) {
  const auto d = Sha256::Hash("");
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  const auto d = Sha256::Hash("abc");
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  const auto d = Sha256::Hash(
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::vector<uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  const auto d = h.Finalize();
  EXPECT_EQ(ToHex(d.data(), d.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.Update(reinterpret_cast<const uint8_t*>(&c), 1);
  EXPECT_EQ(h.Finalize(), Sha256::Hash(msg));
}

// ------------------------------------------------------------------- HMAC

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  std::vector<uint8_t> key(20, 0x0b);
  HmacSha256 mac(key);
  const auto tag = mac.Compute("Hi There");
  EXPECT_EQ(ToHex(tag.data(), tag.size()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  std::vector<uint8_t> key = {'J', 'e', 'f', 'e'};
  HmacSha256 mac(key);
  const auto tag = mac.Compute("what do ya want for nothing?");
  EXPECT_EQ(ToHex(tag.data(), tag.size()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(HmacTest, Rfc4231Case6LongKey) {
  std::vector<uint8_t> key(131, 0xaa);
  HmacSha256 mac(key);
  const auto tag =
      mac.Compute("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(ToHex(tag.data(), tag.size()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyDetectsDifference) {
  HmacSha256 mac(std::vector<uint8_t>{1, 2, 3});
  auto a = mac.Compute("x");
  auto b = a;
  EXPECT_TRUE(HmacSha256::Verify(a, b));
  b[5] ^= 1;
  EXPECT_FALSE(HmacSha256::Verify(a, b));
}

// -------------------------------------------------------------------- PRF

TEST(PrfTest, DerivedKeysAreLabelSeparated) {
  Prf prf(std::vector<uint8_t>{1, 2, 3, 4});
  EXPECT_NE(prf.DeriveAesKey("a"), prf.DeriveAesKey("b"));
  EXPECT_EQ(prf.DeriveAesKey("a"), prf.DeriveAesKey("a"));
  EXPECT_NE(prf.DeriveKey("a"), prf.DeriveKey("b"));
}

TEST(PrfTest, Eval64IsDeterministicAndSpread) {
  Prf prf(std::vector<uint8_t>{9});
  EXPECT_EQ(prf.Eval64("lbl", 7), prf.Eval64("lbl", 7));
  EXPECT_NE(prf.Eval64("lbl", 7), prf.Eval64("lbl", 8));
  EXPECT_NE(prf.Eval64("lbl", 7), prf.Eval64("other", 7));
}

TEST(PrfTest, DifferentMasterKeysDisagree) {
  Prf a(std::vector<uint8_t>{1});
  Prf b(std::vector<uint8_t>{2});
  EXPECT_NE(a.Eval64("l", 0), b.Eval64("l", 0));
}

}  // namespace
}  // namespace prkb::crypto
