// Unit tests for the online cost calibrator (src/exec/calibrate.h): EWMA
// convergence, the warmup floor, hint-as-floor latency semantics, residual
// eval fitting, and the route penalty / regret accounting.

#include "exec/calibrate.h"

#include <gtest/gtest.h>

#include "exec/cost.h"

namespace prkb::exec {
namespace {

constexpr double kDefaultEval = 1000.0;

TEST(CalibratorTest, WarmupFloorKeepsConfiguredValues) {
  CostCalibrator cal(kDefaultEval, /*rt_latency_hint_ns=*/0.0);
  // One sample short of warmup: still the configured values.
  for (uint64_t i = 0; i + 1 < CostCalibrator::kWarmupSamples; ++i) {
    cal.ObserveRoundTrips(1, 250'000);
    cal.ObservePlan(/*evals=*/100, /*trips=*/0, /*wall_ns=*/50'000);
  }
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), 0.0);
  EXPECT_DOUBLE_EQ(cal.eval_ns(), kDefaultEval);

  // The warmup-crossing sample flips both to the fits.
  cal.ObserveRoundTrips(1, 250'000);
  cal.ObservePlan(100, 0, 50'000);
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), 250'000.0);  // identical samples
  EXPECT_DOUBLE_EQ(cal.eval_ns(), 500.0);            // 50'000 / 100
}

TEST(CalibratorTest, EwmaConvergencePinned) {
  CostCalibrator cal(kDefaultEval, 0.0);
  for (uint64_t i = 0; i < CostCalibrator::kWarmupSamples; ++i) {
    cal.ObserveRoundTrips(1, 100'000);
  }
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), 100'000.0);
  // One divergent sample moves the fit by exactly alpha.
  cal.ObserveRoundTrips(1, 200'000);
  const double expected = (1.0 - CostCalibrator::kFitAlpha) * 100'000.0 +
                          CostCalibrator::kFitAlpha * 200'000.0;
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), expected);
}

TEST(CalibratorTest, TripsAreAveragedPerTrip) {
  CostCalibrator cal(kDefaultEval, 0.0);
  for (uint64_t i = 0; i < CostCalibrator::kWarmupSamples; ++i) {
    cal.ObserveRoundTrips(/*trips=*/8, /*total_ns=*/8 * 300'000);
  }
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), 300'000.0);
  // Zero-trip observations are ignored, not divided by.
  cal.ObserveRoundTrips(0, 123);
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), 300'000.0);
}

TEST(CalibratorTest, TripSampleSubtractsEvalShare) {
  CostCalibrator cal(kDefaultEval, 0.0);
  // Each window: 10 trips of 50us transport carrying 100 evals at the
  // (unwarmed, configured) 1000ns rate. The batch compute is charged to the
  // eval rate, so the latency fit sees the pure transport share.
  for (uint64_t i = 0; i < CostCalibrator::kWarmupSamples; ++i) {
    cal.ObserveRoundTrips(10, 10 * 50'000 + 100 * 1'000, /*evals=*/100);
  }
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), 50'000.0);

  // A compute-only window (loopback deployment) clamps at zero instead of
  // going negative: the fit reads "no measurable transport".
  CostCalibrator loop(kDefaultEval, 0.0);
  for (uint64_t i = 0; i < CostCalibrator::kWarmupSamples; ++i) {
    loop.ObserveRoundTrips(10, 100 * 500, /*evals=*/100);
  }
  EXPECT_DOUBLE_EQ(loop.rt_latency_ns(), 0.0);
}

TEST(CalibratorTest, HintActsAsLatencyFloor) {
  CostCalibrator cal(kDefaultEval, /*rt_latency_hint_ns=*/1e6);
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), 1e6);  // unwarmed: the hint
  // Loopback measurements far below the hint never undercut it: the hint
  // encodes a transport the local clock cannot see.
  for (int i = 0; i < 40; ++i) cal.ObserveRoundTrips(1, 1'000);
  EXPECT_DOUBLE_EQ(cal.rt_latency_ns(), 1e6);
  // Measurements above the hint do raise it.
  for (int i = 0; i < 40; ++i) cal.ObserveRoundTrips(1, 5'000'000);
  EXPECT_GT(cal.rt_latency_ns(), 1e6);
}

TEST(CalibratorTest, EvalFitIsTransportResidual) {
  CostCalibrator cal(kDefaultEval, 0.0);
  for (uint64_t i = 0; i < CostCalibrator::kWarmupSamples; ++i) {
    cal.ObserveRoundTrips(1, 100'000);
  }
  // wall = 5 trips x 100us transport + 200 evals x 750ns compute.
  for (uint64_t i = 0; i < CostCalibrator::kWarmupSamples; ++i) {
    cal.ObservePlan(200, 5, 5 * 100'000 + 200 * 750);
  }
  EXPECT_DOUBLE_EQ(cal.eval_ns(), 750.0);
}

TEST(CalibratorTest, PlanWithTripsWaitsForLatencyFit) {
  CostCalibrator cal(kDefaultEval, 0.0);
  // No latency sample yet: a plan that made trips cannot attribute its
  // transport share, so it must not poison the eval fit.
  for (int i = 0; i < 40; ++i) cal.ObservePlan(100, 5, 10'000'000);
  EXPECT_DOUBLE_EQ(cal.eval_ns(), kDefaultEval);
  EXPECT_EQ(cal.snapshot().eval_samples, 0u);
}

TEST(CalibratorTest, RoutePenaltyClampsAndDecays) {
  CostCalibrator cal;
  EXPECT_DOUBLE_EQ(cal.RoutePenalty("never-seen"), 1.0);
  // Overestimating routes are not rewarded below the 1.0 floor.
  cal.ObserveRoute("safe", /*est=*/10'000, /*actual=*/1'000, 0);
  EXPECT_DOUBLE_EQ(cal.RoutePenalty("safe"), 1.0);
  // A wild underestimate clamps at the ceiling instead of exploding.
  cal.ObserveRoute("wild", 1'000, 1e9, 0);
  EXPECT_DOUBLE_EQ(cal.RoutePenalty("wild"), CostCalibrator::kMaxPenalty);
  // Accurate follow-ups decay the penalty back toward 1.
  cal.ObserveRoute("drifty", 1'000, 4'000, 0);
  const double p0 = cal.RoutePenalty("drifty");
  EXPECT_DOUBLE_EQ(p0, 4.0);
  double prev = p0;
  for (int i = 0; i < 6; ++i) {
    cal.ObserveRoute("drifty", 1'000, 1'000, 0);
    const double p = cal.RoutePenalty("drifty");
    EXPECT_LE(p, prev);
    prev = p;
  }
  EXPECT_NEAR(prev, 1.0, 0.05);
}

TEST(CalibratorTest, WinLossRegretAccounting) {
  CostCalibrator cal;
  // Loss: the actual exceeded what the runner-up was estimated to cost.
  cal.ObserveRoute("r", /*est=*/1'000, /*actual=*/2'000,
                   /*runner_up_est=*/1'500);
  // Win: beat the runner-up's estimate.
  cal.ObserveRoute("r", 1'000, 1'200, 1'500);
  // No competitor: counts as a win, no regret either way.
  cal.ObserveRoute("r", 1'000, 9'000, 0);
  const CostCalibrator::Snapshot s = cal.snapshot();
  ASSERT_EQ(s.routes.size(), 1u);
  EXPECT_EQ(s.routes[0].first, "r");
  EXPECT_EQ(s.routes[0].second.observations, 3u);
  EXPECT_EQ(s.routes[0].second.wins, 2u);
  EXPECT_EQ(s.routes[0].second.losses, 1u);
  EXPECT_DOUBLE_EQ(s.routes[0].second.regret_ns, 500.0);
}

TEST(CalibratorTest, DescribeListsConstantsAndRoutes) {
  CostCalibrator cal(kDefaultEval, 3e5);
  cal.ObserveRoute("srci", 1'000, 2'000, 1'500);
  const std::string text = cal.Describe();
  EXPECT_NE(text.find("eval_ns"), std::string::npos);
  EXPECT_NE(text.find("rt_latency_ns"), std::string::npos);
  EXPECT_NE(text.find("route srci"), std::string::npos);
  EXPECT_NE(text.find("loss"), std::string::npos);
}

}  // namespace
}  // namespace prkb::exec
