#include <memory>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/selection.h"
#include "tests/test_util.h"

namespace prkb::core {
namespace {

using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::SelectionStats;
using edbms::Trapdoor;
using edbms::TupleId;
using edbms::Value;
using testutil::OracleSelectAll;
using testutil::RandomTable;
using testutil::Sorted;

constexpr uint64_t kSeed = 4242;

/// Builds the paper's canonical d-dimensional box query: two comparison
/// trapdoors per dimension, 'Xi > lo AND Xi < hi'.
struct BoxQuery {
  std::vector<Trapdoor> trapdoors;
  std::vector<PlainPredicate> plains;
};

BoxQuery MakeBox(CipherbaseEdbms* db, const std::vector<Value>& lo,
                 const std::vector<Value>& hi) {
  BoxQuery q;
  for (size_t d = 0; d < lo.size(); ++d) {
    const auto attr = static_cast<edbms::AttrId>(d);
    q.trapdoors.push_back(db->MakeComparison(attr, CompareOp::kGt, lo[d]));
    q.trapdoors.push_back(db->MakeComparison(attr, CompareOp::kLt, hi[d]));
    q.plains.push_back(
        PlainPredicate{.attr = attr, .op = CompareOp::kGt, .lo = lo[d]});
    q.plains.push_back(
        PlainPredicate{.attr = attr, .op = CompareOp::kLt, .lo = hi[d]});
  }
  return q;
}

TEST(MultidimTest, ColdMdQueryMatchesOracle2D) {
  Rng data_rng(1);
  PlainTable plain = RandomTable(300, 2, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);
  const auto q = MakeBox(&db, {200, 300}, {700, 800});
  const auto got = index.SelectRangeMd(q.trapdoors);
  EXPECT_EQ(Sorted(got), OracleSelectAll(plain, q.plains));
}

TEST(MultidimTest, SdPlusMatchesOracle2D) {
  Rng data_rng(2);
  PlainTable plain = RandomTable(300, 2, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);
  const auto q = MakeBox(&db, {200, 300}, {700, 800});
  const auto got = index.SelectRangeSdPlus(q.trapdoors);
  EXPECT_EQ(Sorted(got), OracleSelectAll(plain, q.plains));
}

TEST(MultidimTest, MdCheaperThanSdPlusOnWarmChains) {
  Rng data_rng(3);
  PlainTable plain = RandomTable(4000, 3, &data_rng, 0, 1000000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);

  // Two identically warmed indexes.
  auto warm = [&](PrkbIndex* index) {
    Rng qrng(5);
    for (int i = 0; i < 120; ++i) {
      const auto attr = static_cast<edbms::AttrId>(qrng.UniformInt(0, 2));
      index->Select(db.MakeComparison(attr, CompareOp::kLt,
                                      qrng.UniformInt64(0, 1000000)));
    }
  };
  PrkbIndex a(&db), b(&db);
  for (edbms::AttrId attr = 0; attr < 3; ++attr) {
    a.EnableAttr(attr);
    b.EnableAttr(attr);
  }
  warm(&a);
  warm(&b);

  const auto q =
      MakeBox(&db, {100000, 200000, 300000}, {400000, 500000, 600000});
  SelectionStats md, sdp;
  const auto got_md = a.SelectRangeMd(q.trapdoors, &md);
  const auto got_sdp = b.SelectRangeSdPlus(q.trapdoors, &sdp);
  EXPECT_EQ(Sorted(got_md), Sorted(got_sdp));
  EXPECT_EQ(Sorted(got_md), OracleSelectAll(plain, q.plains));
  // Sec. 6.2's whole point: the grid prunes most NS-band tuples without QPF.
  EXPECT_LT(md.qpf_uses, sdp.qpf_uses);
}

TEST(MultidimTest, DegeneratesToOneDimension) {
  Rng data_rng(4);
  PlainTable plain = RandomTable(200, 1, &data_rng, 0, 500);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  const auto q = MakeBox(&db, {100}, {300});
  const auto got = index.SelectRangeMd(q.trapdoors);
  EXPECT_EQ(Sorted(got), OracleSelectAll(plain, q.plains));
}

TEST(MultidimTest, EmptyBoxReturnsNothing) {
  Rng data_rng(5);
  PlainTable plain = RandomTable(200, 2, &data_rng, 0, 500);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);
  const auto q = MakeBox(&db, {400, 400}, {100, 100});  // hi < lo
  EXPECT_TRUE(index.SelectRangeMd(q.trapdoors).empty());
}

TEST(MultidimTest, FallsBackWhenAttrNotEnabled) {
  Rng data_rng(6);
  PlainTable plain = RandomTable(100, 2, &data_rng, 0, 500);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);  // attr 1 NOT enabled
  const auto q = MakeBox(&db, {100, 100}, {400, 400});
  const auto got = index.SelectRangeMd(q.trapdoors);
  EXPECT_EQ(Sorted(got), OracleSelectAll(plain, q.plains));
}

struct MdSweep {
  uint64_t seed;
  size_t rows;
  size_t dims;
  Value domain;
  bool eager;
};

class MultidimPropertyTest : public ::testing::TestWithParam<MdSweep> {};

TEST_P(MultidimPropertyTest, RandomBoxSequenceStaysExactAndConsistent) {
  const MdSweep param = GetParam();
  Rng data_rng(param.seed);
  PlainTable plain =
      RandomTable(param.rows, param.dims, &data_rng, 0, param.domain);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db, PrkbOptions{.seed = param.seed,
                                   .eager_md_update = param.eager});
  for (size_t d = 0; d < param.dims; ++d) {
    index.EnableAttr(static_cast<edbms::AttrId>(d));
  }

  Rng qrng(param.seed ^ 0xF00D);
  for (int i = 0; i < 40; ++i) {
    std::vector<Value> lo(param.dims), hi(param.dims);
    for (size_t d = 0; d < param.dims; ++d) {
      lo[d] = qrng.UniformInt64(0, param.domain);
      hi[d] = lo[d] + qrng.UniformInt64(0, param.domain / 2);
    }
    const auto q = MakeBox(&db, lo, hi);
    const auto got = index.SelectRangeMd(q.trapdoors);
    ASSERT_EQ(Sorted(got), OracleSelectAll(plain, q.plains))
        << "box query " << i;
    for (size_t d = 0; d < param.dims; ++d) {
      ASSERT_TRUE(index.pop(static_cast<edbms::AttrId>(d))
                      .ValidateAgainstPlain(plain.column(
                          static_cast<edbms::AttrId>(d)))
                      .ok())
          << "dim " << d << " after box query " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultidimPropertyTest,
    ::testing::Values(MdSweep{1, 120, 2, 400, false},
                      MdSweep{2, 120, 2, 400, true},
                      MdSweep{3, 200, 3, 1000, false},
                      MdSweep{4, 200, 3, 1000, true},
                      MdSweep{5, 80, 4, 50, false},   // heavy duplication
                      MdSweep{6, 80, 4, 50, true},
                      MdSweep{7, 60, 1, 200, false},  // 1-D degenerate
                      MdSweep{8, 300, 2, 1000000, false}));

TEST(MultidimTest, EagerModeBuildsFinerChains) {
  Rng data_rng(9);
  PlainTable plain = RandomTable(1000, 3, &data_rng, 0, 100000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex lazy(&db, PrkbOptions{.seed = 1, .eager_md_update = false});
  PrkbIndex eager(&db, PrkbOptions{.seed = 1, .eager_md_update = true});
  for (edbms::AttrId a = 0; a < 3; ++a) {
    lazy.EnableAttr(a);
    eager.EnableAttr(a);
  }
  Rng qrng(10);
  for (int i = 0; i < 25; ++i) {
    std::vector<Value> lo(3), hi(3);
    for (size_t d = 0; d < 3; ++d) {
      lo[d] = qrng.UniformInt64(0, 100000);
      hi[d] = lo[d] + 30000;
    }
    const auto q = MakeBox(&db, lo, hi);
    lazy.SelectRangeMd(q.trapdoors);
    eager.SelectRangeMd(q.trapdoors);
  }
  size_t k_lazy = 0, k_eager = 0;
  for (edbms::AttrId a = 0; a < 3; ++a) {
    k_lazy += lazy.pop(a).k();
    k_eager += eager.pop(a).k();
  }
  EXPECT_GE(k_eager, k_lazy);
}

}  // namespace
}  // namespace prkb::core
