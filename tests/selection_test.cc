#include "prkb/selection.h"

#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "edbms/sdb_qpf.h"
#include "gtest/gtest.h"
#include "prkb/qfilter.h"
#include "prkb/qscan.h"
#include "tests/test_util.h"

namespace prkb::core {
namespace {

using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::SelectionStats;
using edbms::Trapdoor;
using edbms::TupleId;
using edbms::Value;
using testutil::OracleSelect;
using testutil::RandomTable;
using testutil::Sorted;

constexpr uint64_t kSeed = 1234;

// A tiny fixed table: values on attr 0 are {t0=30, t1=10, t2=50, t3=30, t4=20}.
PlainTable FixedTable() {
  PlainTable t(1);
  t.AddRow({30});
  t.AddRow({10});
  t.AddRow({50});
  t.AddRow({30});
  t.AddRow({20});
  return t;
}

// ---------------------------------------------------------------- QFilter

TEST(QFilterTest, SingletonChainIsBoundaryCase) {
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, FixedTable());
  Pop pop;
  pop.InitSingle(db.num_rows());
  Rng rng(1);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kLt, 25);
  const auto f = QFilter(pop, td, &db, &rng);
  EXPECT_TRUE(f.boundary_case);
  EXPECT_EQ(f.ns_a, 0u);
  EXPECT_EQ(f.ns_b, 0u);
  EXPECT_FALSE(f.HasWinners());
  EXPECT_EQ(db.uses(), 1u);  // one sample
}

TEST(QFilterTest, QpfBudgetIsLogarithmic) {
  // Build a fine-grained chain by querying, then check QFilter's cost.
  Rng data_rng(7);
  PlainTable plain = RandomTable(400, 1, &data_rng, 0, 10000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  Rng qrng(3);
  for (int i = 0; i < 60; ++i) {
    index.Select(db.MakeComparison(0, CompareOp::kLt,
                                   qrng.UniformInt64(0, 10000)));
  }
  const size_t k = index.pop(0).k();
  ASSERT_GT(k, 20u);

  db.ResetUses();
  Rng rng(5);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kLt, 5000);
  QFilter(index.pop(0), td, &db, &rng);
  // 2 end samples + at most ceil(lg k) bisection samples.
  size_t lg = 0;
  while ((1u << lg) < k) ++lg;
  EXPECT_LE(db.uses(), 2 + lg);
}

// ------------------------------------------------------------------ QScan

TEST(QScanTest, SplitsNonHomogeneousPartitionExactly) {
  auto plain = FixedTable();
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  Pop pop;
  pop.InitSingle(db.num_rows());
  Rng rng(1);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kLt, 25);
  const auto f = QFilter(pop, td, &db, &rng);
  const auto s = QScan(pop, f, td, &db);
  EXPECT_TRUE(s.split_found);
  EXPECT_EQ(Sorted(s.split_true), (std::vector<TupleId>{1, 4}));
  EXPECT_EQ(Sorted(s.split_false), (std::vector<TupleId>{0, 2, 3}));
  EXPECT_EQ(Sorted(s.winners), (std::vector<TupleId>{1, 4}));
}

// ------------------------------------------------- Single-predicate Select

TEST(PrkbSelectTest, FirstQueryMatchesOracleAndSplits) {
  auto plain = FixedTable();
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  const Trapdoor td = db.MakeComparison(0, CompareOp::kLt, 25);
  SelectionStats stats;
  const auto got = index.Select(td, &stats);
  EXPECT_EQ(Sorted(got), (std::vector<TupleId>{1, 4}));
  EXPECT_EQ(index.pop(0).k(), 2u);
  EXPECT_GT(stats.qpf_uses, 0u);
  EXPECT_TRUE(
      index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
}

TEST(PrkbSelectTest, EquivalentPredicateDoesNotGrowChain) {
  auto plain = FixedTable();
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Select(db.MakeComparison(0, CompareOp::kLt, 25));
  const size_t k = index.pop(0).k();
  // 'X < 22' partitions {10,20} | {30,30,50} exactly like 'X < 25':
  // equivalent trapdoors (Def. 4.3) must not extend the chain.
  index.Select(db.MakeComparison(0, CompareOp::kLt, 22));
  EXPECT_EQ(index.pop(0).k(), k);
  // So does the mirrored comparison 'X > 25'.
  index.Select(db.MakeComparison(0, CompareOp::kGt, 25));
  EXPECT_EQ(index.pop(0).k(), k);
}

TEST(PrkbSelectTest, AllTrueAndAllFalsePredicates) {
  auto plain = FixedTable();
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  EXPECT_EQ(index.Select(db.MakeComparison(0, CompareOp::kLt, 1000)).size(),
            5u);
  EXPECT_EQ(index.Select(db.MakeComparison(0, CompareOp::kGt, 1000)).size(),
            0u);
  EXPECT_EQ(index.pop(0).k(), 1u);  // no knowledge gained
  // And they stay exact once the chain is non-trivial.
  index.Select(db.MakeComparison(0, CompareOp::kLt, 25));
  EXPECT_EQ(index.Select(db.MakeComparison(0, CompareOp::kLt, 1000)).size(),
            5u);
  EXPECT_EQ(index.Select(db.MakeComparison(0, CompareOp::kGe, 1000)).size(),
            0u);
}

TEST(PrkbSelectTest, SelectOnEmptyTable) {
  PlainTable plain(1);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  EXPECT_TRUE(index.Select(db.MakeComparison(0, CompareOp::kLt, 5)).empty());
}

TEST(PrkbSelectTest, FallsBackToScanWithoutEnabledAttr) {
  auto plain = FixedTable();
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);  // attr 0 NOT enabled
  SelectionStats stats;
  const auto got = index.Select(db.MakeComparison(0, CompareOp::kLt, 25),
                                &stats);
  EXPECT_EQ(Sorted(got), (std::vector<TupleId>{1, 4}));
  EXPECT_EQ(stats.qpf_uses, plain.num_rows());
}

TEST(PrkbSelectTest, QpfUsageCollapsesAsChainGrows) {
  Rng data_rng(11);
  PlainTable plain = RandomTable(2000, 1, &data_rng, 0, 100000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  Rng qrng(13);
  uint64_t first_cost = 0, late_cost = 0;
  for (int i = 0; i < 120; ++i) {
    SelectionStats stats;
    PlainPredicate p{.attr = 0, .op = CompareOp::kLt,
                     .lo = qrng.UniformInt64(0, 100000)};
    const auto got = index.Select(db.MakeComparison(0, p.op, p.lo), &stats);
    EXPECT_EQ(Sorted(got), OracleSelect(plain, p)) << "query " << i;
    if (i == 0) first_cost = stats.qpf_uses;
    if (i == 119) late_cost = stats.qpf_uses;
  }
  EXPECT_EQ(first_cost, 2000u + 1);  // full scan + one sample
  // Orders-of-magnitude drop is the paper's headline claim (Fig. 8).
  EXPECT_LT(late_cost, first_cost / 10);
}

// --------------------------------------------------------- Property sweeps

struct SweepParam {
  uint64_t seed;
  size_t rows;
  Value domain;
  bool use_sdb;
};

class SelectionPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SelectionPropertyTest, RandomQuerySequenceStaysExactAndConsistent) {
  const SweepParam param = GetParam();
  Rng data_rng(param.seed);
  PlainTable plain = RandomTable(param.rows, 1, &data_rng, 0, param.domain);

  // Run against either backend through the same Edbms interface.
  std::unique_ptr<edbms::Edbms> db;
  if (param.use_sdb) {
    db = std::make_unique<edbms::SdbEdbms>(
        edbms::SdbEdbms::FromPlainTable(kSeed, plain));
  } else {
    db = std::make_unique<CipherbaseEdbms>(
        CipherbaseEdbms::FromPlainTable(kSeed, plain));
  }
  PrkbIndex index(db.get(), PrkbOptions{.seed = param.seed * 31});
  index.EnableAttr(0);

  Rng qrng(param.seed ^ 0xABCD);
  const CompareOp ops[] = {CompareOp::kLt, CompareOp::kGt, CompareOp::kLe,
                           CompareOp::kGe};
  for (int i = 0; i < 80; ++i) {
    PlainPredicate p{.attr = 0,
                     .op = ops[qrng.UniformInt(0, 3)],
                     .lo = qrng.UniformInt64(0, param.domain)};
    const auto got = index.Select(db->MakeComparison(p.attr, p.op, p.lo));
    ASSERT_EQ(Sorted(got), OracleSelect(plain, p))
        << "query " << i << ": " << p.ToString();
    ASSERT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok())
        << "after query " << i;
  }
  // The chain can never exceed distinct-values partitions.
  std::vector<Value> vals = plain.column(0);
  std::sort(vals.begin(), vals.end());
  const size_t distinct =
      std::unique(vals.begin(), vals.end()) - vals.begin();
  EXPECT_LE(index.pop(0).k(), distinct);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectionPropertyTest,
    ::testing::Values(
        SweepParam{1, 50, 20, false},    // tiny domain: many duplicates
        SweepParam{2, 50, 20, true},     // same, SDB backend
        SweepParam{3, 200, 1000, false},
        SweepParam{4, 200, 1000, true},
        SweepParam{5, 1000, 100000, false},
        SweepParam{6, 37, 5, false},     // domain smaller than table
        SweepParam{7, 1, 10, false},     // single-tuple table
        SweepParam{8, 2, 2, false}));    // two tuples, two values

// QPF-budget invariant: cost of a warm selection is bounded by
// |Pa| + |Pb| + lg k + 2.
TEST(SelectionBudgetTest, WarmQueryRespectsTheoreticalBound) {
  Rng data_rng(21);
  PlainTable plain = RandomTable(3000, 1, &data_rng, 0, 1000000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  Rng qrng(23);
  for (int i = 0; i < 150; ++i) {
    const Value c = qrng.UniformInt64(0, 1000000);
    // Bound computed on the chain as it stands BEFORE the query (the query
    // itself may split the scanned partitions).
    const Pop& pop = index.pop(0);
    size_t max_two = 0, max_one = 0;
    for (size_t p = 0; p < pop.k(); ++p) {
      const size_t sz = pop.members_at(p).Size();
      if (sz >= max_one) {
        max_two = max_one;
        max_one = sz;
      } else if (sz > max_two) {
        max_two = sz;
      }
    }
    size_t lg = 0;
    while ((1u << lg) < pop.k()) ++lg;
    SelectionStats stats;
    index.Select(db.MakeComparison(0, CompareOp::kLt, c), &stats);
    if (i < 5) continue;  // let the chain warm up
    EXPECT_LE(stats.qpf_uses, max_one + max_two + lg + 2) << "query " << i;
  }
}

}  // namespace
}  // namespace prkb::core
