// Repeat-predicate fast path: a byte-identical re-sent trapdoor whose cut is
// already in the chain must be answered from the chain alone — zero QPF uses,
// zero QFilter/BETWEEN probes, no split — and stay oracle-exact across
// inserts, deletes and snapshot round trips.

#include <cstdio>
#include <string>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"
#include "tests/test_util.h"

namespace prkb {
namespace {

using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PredicateKind;
using edbms::SelectionStats;
using edbms::TupleId;
using edbms::Value;

uint64_t Probes() {
  return obs::MetricsRegistry::Global().GetCounter("qfilter.probes")->value() +
         obs::MetricsRegistry::Global().GetCounter("between.probes")->value();
}

PlainPredicate Cmp(edbms::AttrId attr, CompareOp op, Value c) {
  PlainPredicate p;
  p.attr = attr;
  p.op = op;
  p.lo = c;
  return p;
}

PlainPredicate Btw(edbms::AttrId attr, Value lo, Value hi) {
  PlainPredicate p;
  p.attr = attr;
  p.kind = PredicateKind::kBetween;
  p.lo = lo;
  p.hi = hi;
  return p;
}

TEST(FastPathTest, RepeatedComparisonCostsZeroQpf) {
  Rng data_rng(11);
  auto plain = testutil::RandomTable(400, 1, &data_rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(42, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);

  const PlainPredicate p = Cmp(0, CompareOp::kLt, 500);
  const auto td = db.MakeComparison(p.attr, p.op, p.lo);
  const auto expect = testutil::OracleSelect(plain, p);

  SelectionStats first;
  EXPECT_EQ(testutil::Sorted(index.Select(td, &first)), expect);
  EXPECT_GT(first.qpf_uses, 0u);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(first.cache_misses, 1u);
  EXPECT_EQ(index.pop(0).fast_path_entries(), 1u);

  const uint64_t probes_before = Probes();
  SelectionStats repeat;
  EXPECT_EQ(testutil::Sorted(index.Select(td, &repeat)), expect);
  EXPECT_EQ(repeat.qpf_uses, 0u);
  EXPECT_EQ(repeat.qpf_round_trips, 0u);
  EXPECT_EQ(repeat.cache_hits, 1u);
  EXPECT_EQ(repeat.cache_misses, 0u);
  EXPECT_EQ(Probes(), probes_before);
}

TEST(FastPathTest, RepeatedBetweenCostsZeroQpf) {
  Rng data_rng(12);
  auto plain = testutil::RandomTable(400, 1, &data_rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(43, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);

  // A first comparison puts a boundary inside the band, so both BETWEEN ends
  // land in distinct partitions and the two end splits get linked (the
  // cacheable outcome; an interior (F,T,F) band in one partition is not).
  const PlainPredicate warm = Cmp(0, CompareOp::kLt, 500);
  index.Select(db.MakeComparison(warm.attr, warm.op, warm.lo));

  const PlainPredicate p = Btw(0, 300, 700);
  const auto td = db.MakeBetween(p.attr, p.lo, p.hi);
  const auto expect = testutil::OracleSelect(plain, p);

  SelectionStats first;
  EXPECT_EQ(testutil::Sorted(index.Select(td, &first)), expect);
  EXPECT_GT(first.qpf_uses, 0u);
  EXPECT_EQ(index.pop(0).fast_path_entries(), 2u);

  const uint64_t probes_before = Probes();
  SelectionStats repeat;
  EXPECT_EQ(testutil::Sorted(index.Select(td, &repeat)), expect);
  EXPECT_EQ(repeat.qpf_uses, 0u);
  EXPECT_EQ(repeat.cache_hits, 1u);
  EXPECT_EQ(Probes(), probes_before);
}

TEST(FastPathTest, CacheSurvivesSnapshotRoundTrip) {
  Rng data_rng(13);
  auto plain = testutil::RandomTable(300, 1, &data_rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(44, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);

  const PlainPredicate pc = Cmp(0, CompareOp::kGe, 400);
  const PlainPredicate pb = Btw(0, 200, 600);
  const auto tdc = db.MakeComparison(pc.attr, pc.op, pc.lo);
  const auto tdb = db.MakeBetween(pb.attr, pb.lo, pb.hi);
  index.Select(tdc);
  index.Select(tdb);
  const size_t entries = index.pop(0).fast_path_entries();
  EXPECT_GE(entries, 1u);

  const std::string path = testing::TempDir() + "/fast_path_snapshot.prkb";
  ASSERT_TRUE(core::SavePrkb(index, path).ok());
  core::PrkbIndex restored(&db);
  ASSERT_TRUE(core::LoadPrkb(&restored, path).ok());
  std::remove(path.c_str());
  EXPECT_EQ(restored.pop(0).fast_path_entries(), entries);

  SelectionStats repeat;
  EXPECT_EQ(testutil::Sorted(restored.Select(tdc, &repeat)),
            testutil::OracleSelect(plain, pc));
  EXPECT_EQ(repeat.qpf_uses, 0u);
  EXPECT_EQ(repeat.cache_hits, 1u);
  EXPECT_EQ(testutil::Sorted(restored.Select(tdb, &repeat)),
            testutil::OracleSelect(plain, pb));
  EXPECT_EQ(repeat.qpf_uses, 0u);
}

TEST(FastPathTest, AblationFlagRestoresAlwaysProbe) {
  Rng data_rng(14);
  auto plain = testutil::RandomTable(300, 1, &data_rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(45, plain);
  core::PrkbIndex index(&db, core::PrkbOptions{.fast_path = false});
  index.EnableAttr(0);

  const PlainPredicate p = Cmp(0, CompareOp::kLt, 500);
  const auto td = db.MakeComparison(p.attr, p.op, p.lo);
  const auto expect = testutil::OracleSelect(plain, p);

  index.Select(td);
  EXPECT_EQ(index.pop(0).fast_path_entries(), 0u);
  SelectionStats repeat;
  EXPECT_EQ(testutil::Sorted(index.Select(td, &repeat)), expect);
  EXPECT_GT(repeat.qpf_uses, 0u);  // the paper's literal always-probe cost
  EXPECT_EQ(repeat.cache_hits, 0u);
  EXPECT_EQ(repeat.cache_misses, 0u);
}

TEST(FastPathTest, RepeatedMdPredicatesSkipQpf) {
  Rng data_rng(15);
  auto plain = testutil::RandomTable(400, 2, &data_rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(46, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);

  const std::vector<PlainPredicate> box = {Cmp(0, CompareOp::kGe, 250),
                                           Cmp(0, CompareOp::kLt, 750),
                                           Cmp(1, CompareOp::kGe, 100),
                                           Cmp(1, CompareOp::kLt, 600)};
  std::vector<edbms::Trapdoor> tds;
  for (const auto& p : box) tds.push_back(db.MakeComparison(p.attr, p.op, p.lo));

  // Warm every dimension with its single-predicate flow.
  for (const auto& td : tds) index.Select(td);

  SelectionStats repeat;
  EXPECT_EQ(testutil::Sorted(index.SelectRangeMd(tds, &repeat)),
            testutil::OracleSelectAll(plain, box));
  EXPECT_EQ(repeat.qpf_uses, 0u);
  EXPECT_EQ(repeat.cache_hits, 4u);
}

TEST(FastPathTest, RepeatsStayExactAcrossChurn) {
  Rng data_rng(16);
  auto plain = testutil::RandomTable(300, 1, &data_rng, 0, 999);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(47, plain);
  core::PrkbIndex index(&db);
  index.EnableAttr(0);

  const PlainPredicate p = Cmp(0, CompareOp::kLt, 500);
  const auto td = db.MakeComparison(p.attr, p.op, p.lo);
  index.Select(td);

  // Cut-steered inserts must land each new tuple on the correct side of the
  // remembered cut, and deletes must never leave the cache pointing at a
  // dead or re-anchored cut that would mislabel survivors.
  Rng churn_rng(17);
  std::vector<TupleId> extra;
  std::vector<Value> extra_val;
  for (int i = 0; i < 40; ++i) {
    const Value v = churn_rng.UniformInt64(0, 999);
    extra.push_back(index.Insert({v}));
    extra_val.push_back(v);
  }
  for (TupleId tid = 0; tid < 300; tid += 7) index.Delete(tid);

  std::vector<TupleId> expect;
  for (TupleId tid = 0; tid < 300; ++tid) {
    if (db.IsLive(tid) && p.Satisfies(plain.at(0, tid))) expect.push_back(tid);
  }
  for (size_t i = 0; i < extra.size(); ++i) {
    if (p.Satisfies(extra_val[i])) expect.push_back(extra[i]);
  }

  SelectionStats repeat;
  EXPECT_EQ(testutil::Sorted(index.Select(td, &repeat)),
            testutil::Sorted(expect));
  EXPECT_EQ(repeat.qpf_uses, 0u);  // churn above never empties a partition
  EXPECT_TRUE(index.pop(0).Validate().ok());
}

}  // namespace
}  // namespace prkb
