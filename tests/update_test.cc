#include <cstdio>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"
#include "tests/test_util.h"

namespace prkb::core {
namespace {

using edbms::CipherbaseEdbms;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::SelectionStats;
using edbms::TupleId;
using edbms::Value;
using testutil::OracleSelect;
using testutil::RandomTable;
using testutil::Sorted;

constexpr uint64_t kSeed = 31337;

// Mirror of the encrypted table kept in plaintext so the oracle can follow
// inserts/deletes.
struct Mirror {
  PlainTable plain{1};
};

// Placement QPF bound for one insert: the paper's ⌈lg k⌉ + 1 on the
// sequential path, and its m-ary analogue (m−1)·⌈log_m k⌉ + 1 when the
// probe scheduler ships m−1 cuts per round trip.
void CheckPlacementBound(PrkbOptions options) {
  Rng data_rng(1);
  PlainTable plain = RandomTable(2000, 1, &data_rng, 0, 1000000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db, options);
  index.EnableAttr(0);
  Rng qrng(2);
  for (int i = 0; i < 200; ++i) {
    index.Select(
        db.MakeComparison(0, CompareOp::kLt, qrng.UniformInt64(0, 1000000)));
  }
  const size_t k = index.pop(0).k();
  ASSERT_GT(k, 50u);
  const size_t m = options.sequential_probes ? 2 : options.probe_fanout;
  size_t log_m = 0;
  for (size_t reach = 1; reach < k; reach *= m) ++log_m;

  SelectionStats stats;
  index.Insert({123456}, &stats);
  EXPECT_LE(stats.qpf_uses, (m - 1) * log_m + 1);
  EXPECT_EQ(index.pop(0).num_tuples(), 2001u);
}

TEST(InsertTest, PlacementIsLogarithmicInK) {
  CheckPlacementBound(PrkbOptions{.sequential_probes = true});
}

TEST(InsertTest, MaryPlacementRespectsTheInflatedBound) {
  CheckPlacementBound(PrkbOptions{});
}

TEST(InsertTest, InsertedTuplesAreFoundByLaterQueries) {
  Rng data_rng(3);
  PlainTable plain = RandomTable(300, 1, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  Rng qrng(4);
  for (int i = 0; i < 40; ++i) {
    index.Select(
        db.MakeComparison(0, CompareOp::kLt, qrng.UniformInt64(0, 1000)));
  }
  // Insert values all over the domain, including duplicates and extremes.
  for (Value v : {Value{0}, Value{1000}, Value{500}, Value{500}, Value{17}}) {
    const TupleId tid = index.Insert({v});
    plain.AddRow({v});
    EXPECT_EQ(tid, plain.num_rows() - 1);
  }
  EXPECT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
  for (Value c : {Value{10}, Value{400}, Value{501}, Value{999}}) {
    PlainPredicate p{.attr = 0, .op = CompareOp::kLe, .lo = c};
    const auto got = index.Select(db.MakeComparison(0, p.op, c));
    ASSERT_EQ(Sorted(got), OracleSelect(plain, p)) << "c=" << c;
  }
}

TEST(InsertTest, IntoEmptyIndexCreatesFirstPartition) {
  PlainTable plain(1);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Insert({42});
  index.Insert({7});
  EXPECT_EQ(index.pop(0).k(), 1u);
  EXPECT_EQ(index.pop(0).num_tuples(), 2u);
  const auto got = index.Select(db.MakeComparison(0, CompareOp::kLt, 10));
  EXPECT_EQ(got, (std::vector<TupleId>{1}));
}

TEST(DeleteTest, DeletedTuplesVanishFromResults) {
  Rng data_rng(5);
  PlainTable plain = RandomTable(100, 1, &data_rng, 0, 200);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  Rng qrng(6);
  for (int i = 0; i < 20; ++i) {
    index.Select(
        db.MakeComparison(0, CompareOp::kLt, qrng.UniformInt64(0, 200)));
  }
  for (TupleId tid : {TupleId{0}, TupleId{50}, TupleId{99}}) {
    index.Delete(tid);
  }
  PlainPredicate p{.attr = 0, .op = CompareOp::kGe, .lo = 0};  // everything
  const auto got = index.Select(db.MakeComparison(0, p.op, p.lo));
  EXPECT_EQ(Sorted(got), OracleSelect(plain, p, &db));
  EXPECT_EQ(got.size(), 97u);
}

TEST(DeleteTest, EmptyingPartitionsShrinksChain) {
  PlainTable plain(1);
  for (Value v : {10, 20, 30, 40}) plain.AddRow({v});
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.Select(db.MakeComparison(0, CompareOp::kLt, 25));
  index.Select(db.MakeComparison(0, CompareOp::kLt, 35));
  ASSERT_EQ(index.pop(0).k(), 3u);
  index.Delete(2);  // value 30 is alone in its partition
  EXPECT_EQ(index.pop(0).k(), 2u);
  EXPECT_TRUE(index.pop(0).Validate().ok());
}

TEST(UpdateChurnTest, MixedWorkloadStaysExact) {
  Rng data_rng(7);
  PlainTable plain = RandomTable(200, 2, &data_rng, 0, 500);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db, PrkbOptions{.seed = 99});
  index.EnableAttr(0);
  index.EnableAttr(1);
  Rng wrng(8);
  std::vector<TupleId> live;
  for (TupleId t = 0; t < 200; ++t) live.push_back(t);

  for (int i = 0; i < 150; ++i) {
    const double dice = wrng.UniformDouble();
    if (dice < 0.2) {
      const Value a = wrng.UniformInt64(0, 500);
      const Value b = wrng.UniformInt64(0, 500);
      index.Insert({a, b});
      plain.AddRow({a, b});
      live.push_back(static_cast<TupleId>(plain.num_rows() - 1));
    } else if (dice < 0.35 && !live.empty()) {
      const size_t pos = wrng.UniformInt(0, live.size() - 1);
      index.Delete(live[pos]);
      live.erase(live.begin() + static_cast<ptrdiff_t>(pos));
    } else {
      const auto attr = static_cast<edbms::AttrId>(wrng.UniformInt(0, 1));
      PlainPredicate p{.attr = attr, .op = CompareOp::kLt,
                       .lo = wrng.UniformInt64(0, 500)};
      const auto got = index.Select(db.MakeComparison(attr, p.op, p.lo));
      ASSERT_EQ(Sorted(got), OracleSelect(plain, p, &db)) << "step " << i;
    }
    for (edbms::AttrId a = 0; a < 2; ++a) {
      // Validation oracle ignores tombstoned tuples automatically: they are
      // no longer members of any partition.
      ASSERT_TRUE(index.pop(a).ValidateAgainstPlain(plain.column(a)).ok())
          << "attr " << a << " step " << i;
    }
  }
}

TEST(UpdateChurnTest, InsertAfterBetweenQueriesUsesSiblingCuts) {
  Rng data_rng(9);
  PlainTable plain = RandomTable(300, 1, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  Rng qrng(10);
  // One comparison to bootstrap (a cold k=1 chain can never orient a BETWEEN
  // band), then a chain grown purely from BETWEEN queries: almost every cut
  // is a between cut, so insertion has to use sibling-pair evaluation.
  index.Select(db.MakeComparison(0, CompareOp::kLt, 500));
  for (int i = 0; i < 30; ++i) {
    const Value lo = qrng.UniformInt64(0, 900);
    index.Select(db.MakeBetween(0, lo, lo + 100));
  }
  ASSERT_GT(index.pop(0).k(), 3u);
  for (int i = 0; i < 30; ++i) {
    const Value v = qrng.UniformInt64(0, 1000);
    index.Insert({v});
    plain.AddRow({v});
  }
  EXPECT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
  PlainPredicate p{.attr = 0, .op = CompareOp::kLt, .lo = 500};
  const auto got = index.Select(db.MakeComparison(0, p.op, p.lo));
  EXPECT_EQ(Sorted(got), OracleSelect(plain, p));
}

// ------------------------------------------------------------- Persistence

TEST(PrkbIoTest, SaveLoadRoundTripPreservesChainsAndCuts) {
  Rng data_rng(11);
  PlainTable plain = RandomTable(400, 2, &data_rng, 0, 10000);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  index.EnableAttr(1);
  Rng qrng(12);
  for (int i = 0; i < 50; ++i) {
    const auto attr = static_cast<edbms::AttrId>(qrng.UniformInt(0, 1));
    if (qrng.Bernoulli(0.3)) {
      const Value lo = qrng.UniformInt64(0, 9000);
      index.Select(db.MakeBetween(attr, lo, lo + 500));
    } else {
      index.Select(db.MakeComparison(attr, CompareOp::kLt,
                                     qrng.UniformInt64(0, 10000)));
    }
  }

  const std::string path = "/tmp/prkb_io_test.bin";
  ASSERT_TRUE(SavePrkb(index, path).ok());

  PrkbIndex loaded(&db);
  ASSERT_TRUE(LoadPrkb(&loaded, path).ok());
  for (edbms::AttrId a = 0; a < 2; ++a) {
    ASSERT_TRUE(loaded.IsEnabled(a));
    EXPECT_EQ(loaded.pop(a).k(), index.pop(a).k());
    EXPECT_EQ(loaded.pop(a).num_tuples(), index.pop(a).num_tuples());
    EXPECT_TRUE(loaded.pop(a).ValidateAgainstPlain(plain.column(a)).ok());
  }
  // The loaded index answers queries and accepts inserts.
  PlainPredicate p{.attr = 0, .op = CompareOp::kGe, .lo = 5000};
  const auto got = loaded.Select(db.MakeComparison(0, p.op, p.lo));
  EXPECT_EQ(Sorted(got), OracleSelect(plain, p));
  loaded.Insert({1234, 5678});
  plain.AddRow({1234, 5678});
  EXPECT_TRUE(loaded.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
  std::remove(path.c_str());
}

TEST(PrkbIoTest, LoadRejectsGarbage) {
  const std::string path = "/tmp/prkb_io_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a prkb file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  PlainTable plain(1);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  EXPECT_FALSE(LoadPrkb(&index, path).ok());
  std::remove(path.c_str());
}

TEST(PrkbIoTest, LoadRejectsMissingFile) {
  PlainTable plain(1);
  auto db = CipherbaseEdbms::FromPlainTable(kSeed, plain);
  PrkbIndex index(&db);
  EXPECT_EQ(LoadPrkb(&index, "/tmp/definitely_missing_prkb.bin").code(),
            Status::Code::kIoError);
}

}  // namespace
}  // namespace prkb::core
