#include <algorithm>
#include <thread>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "edbms/ope.h"
#include "gtest/gtest.h"
#include "prkb/concurrent.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb {
namespace {

using edbms::CompareOp;
using edbms::OpeColumn;
using edbms::PlainPredicate;
using edbms::TupleId;
using edbms::Value;

// ---------------------------------------------------- ConcurrentPrkbIndex

TEST(ConcurrentIndexTest, ParallelClientsStayExact) {
  Rng data_rng(1);
  auto plain = testutil::RandomTable(500, 1, &data_rng, 0, 10000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(42, plain);
  core::ConcurrentPrkbIndex index(&db);
  index.EnableAttr(0);

  // Pre-issue trapdoors (the DataOwner is not part of the SP-side
  // concurrency story) with their oracle answers.
  struct Query {
    edbms::Trapdoor td;
    std::vector<TupleId> expect;
  };
  std::vector<Query> queries;
  workload::QueryGen gen(0, 10000, 2);
  for (int i = 0; i < 64; ++i) {
    const PlainPredicate p = gen.RandomComparison(0);
    queries.push_back(Query{db.MakeComparison(p.attr, p.op, p.lo),
                            testutil::OracleSelect(plain, p)});
  }

  std::atomic<int> failures{0};
  auto worker = [&](int offset) {
    for (size_t i = offset; i < queries.size(); i += 4) {
      const auto got = testutil::Sorted(index.Select(queries[i].td));
      if (got != queries[i].expect) failures.fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  index.WithLocked([&](core::PrkbIndex& inner) {
    EXPECT_TRUE(
        inner.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
    return 0;
  });
}

TEST(ConcurrentIndexTest, MixedChurnUnderThreads) {
  Rng data_rng(3);
  auto plain = testutil::RandomTable(300, 1, &data_rng, 0, 1000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(42, plain);
  core::ConcurrentPrkbIndex index(&db);
  index.EnableAttr(0);

  std::vector<edbms::Trapdoor> tds;
  workload::QueryGen gen(0, 1000, 4);
  for (int i = 0; i < 40; ++i) {
    const auto p = gen.RandomComparison(0);
    tds.push_back(db.MakeComparison(p.attr, p.op, p.lo));
  }

  std::thread selector([&] {
    for (const auto& td : tds) index.Select(td);
  });
  std::thread inserter([&] {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
      index.Insert({rng.UniformInt64(0, 1000)});
    }
  });
  selector.join();
  inserter.join();

  index.WithLocked([&](core::PrkbIndex& inner) {
    EXPECT_TRUE(inner.pop(0).Validate().ok());
    EXPECT_EQ(inner.pop(0).num_tuples(), 350u);
    return 0;
  });
}

// ------------------------------------------------------------- OpeColumn

TEST(OpeTest, CodesPreserveOrderExactly) {
  Rng rng(7);
  std::vector<Value> column;
  for (int i = 0; i < 500; ++i) column.push_back(rng.UniformInt64(-1000, 1000));
  const OpeColumn ope = OpeColumn::Build(column, 99);
  for (TupleId a = 0; a < column.size(); ++a) {
    for (TupleId b = a + 1; b < column.size() && b < a + 20; ++b) {
      if (column[a] < column[b]) {
        EXPECT_LT(ope.code_at(a), ope.code_at(b));
      } else if (column[a] > column[b]) {
        EXPECT_GT(ope.code_at(a), ope.code_at(b));
      } else {
        EXPECT_EQ(ope.code_at(a), ope.code_at(b));
      }
    }
  }
}

TEST(OpeTest, ProbesAnswerRangeQueriesOverCodes) {
  std::vector<Value> column = {10, 20, 30, 40, 50};
  const OpeColumn ope = OpeColumn::Build(column, 1);
  // 'X < 35' over codes: code(v) < probe(35).
  const uint64_t probe = ope.EncodeProbe(35);
  std::vector<TupleId> got;
  for (TupleId t = 0; t < column.size(); ++t) {
    if (ope.code_at(t) < probe) got.push_back(t);
  }
  EXPECT_EQ(got, (std::vector<TupleId>{0, 1, 2}));
  // Probe of a stored value compares non-strictly correct too.
  EXPECT_EQ(ope.EncodeProbe(30), ope.code_at(2));
}

TEST(OpeTest, TotalOrderIsPublicBeforeAnyQuery) {
  // The paper's contrast (Sec. 8.1): under OPE, RPOI is 100% at query 0.
  Rng rng(9);
  std::vector<Value> column;
  for (int i = 0; i < 300; ++i) column.push_back(rng.UniformInt64(0, 100000));
  const OpeColumn ope = OpeColumn::Build(column, 5);
  const auto recovered = ope.RecoverTotalOrder();
  // The recovered permutation must sort the hidden plaintexts.
  for (size_t i = 0; i + 1 < recovered.size(); ++i) {
    EXPECT_LE(column[recovered[i]], column[recovered[i + 1]]);
  }
}

TEST(OpeTest, DifferentKeysGiveDifferentCodesSameOrder) {
  std::vector<Value> column = {3, 1, 4, 1, 5};
  const OpeColumn a = OpeColumn::Build(column, 1);
  const OpeColumn b = OpeColumn::Build(column, 2);
  bool any_diff = false;
  for (TupleId t = 0; t < column.size(); ++t) {
    any_diff |= a.code_at(t) != b.code_at(t);
  }
  EXPECT_TRUE(any_diff);
  EXPECT_EQ(a.RecoverTotalOrder(), b.RecoverTotalOrder());
}

}  // namespace
}  // namespace prkb
