// Property tests for the Roaring-style compressed membership set
// (prkb/memberset.h) against a std::set oracle, exercised across the
// array / bitmap / run container-type boundaries.
#include "prkb/memberset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"

namespace prkb::core {
namespace {

using edbms::TupleId;

std::vector<TupleId> ToVec(const std::set<TupleId>& s) {
  return std::vector<TupleId>(s.begin(), s.end());
}

/// Checks every read-side accessor of `ms` against the oracle.
void ExpectMatches(const MemberSet& ms, const std::set<TupleId>& oracle) {
  ASSERT_EQ(ms.Size(), oracle.size());
  EXPECT_EQ(ms.Empty(), oracle.empty());
  EXPECT_EQ(ms.ToVector(), ToVec(oracle));
  // Iteration is ascending (winner assembly and the on-disk encodings are
  // deterministic functions of the set).
  std::vector<TupleId> seen;
  ms.ForEach([&seen](TupleId tid) { seen.push_back(tid); });
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen, ToVec(oracle));
  // Rank-select agrees with sorted order.
  if (!oracle.empty()) {
    EXPECT_EQ(ms.Select(0), *oracle.begin());
    EXPECT_EQ(ms.Select(oracle.size() - 1), *oracle.rbegin());
    size_t mid = oracle.size() / 2;
    EXPECT_EQ(ms.Select(mid), ToVec(oracle)[mid]);
  }
}

/// Value shapes that force each container kind and its transitions:
///   dense contiguous runs (run containers), sparse scatter (array),
///   above-threshold scatter (bitmap), and mixes straddling 64Ki chunks.
std::vector<TupleId> ShapedValues(int shape, Rng* rng) {
  std::vector<TupleId> vals;
  switch (shape % 5) {
    case 0:  // one long run
      for (TupleId t = 100; t < 5200; ++t) vals.push_back(t);
      break;
    case 1:  // sparse array
      for (int i = 0; i < 600; ++i) {
        vals.push_back(static_cast<TupleId>(rng->UniformInt(0, 65535)));
      }
      break;
    case 2:  // dense scatter past the array→bitmap threshold (4096)
      for (int i = 0; i < 9000; ++i) {
        vals.push_back(static_cast<TupleId>(rng->UniformInt(0, 30000)));
      }
      break;
    case 3:  // runs with gaps, crossing the 65536 chunk boundary
      for (TupleId t = 65000; t < 66000; ++t) vals.push_back(t);
      for (TupleId t = 131000; t < 131100; ++t) vals.push_back(t);
      vals.push_back(7);
      break;
    default:  // scatter across many chunks
      for (int i = 0; i < 3000; ++i) {
        vals.push_back(static_cast<TupleId>(rng->UniformInt(0, 1 << 20)));
      }
      break;
  }
  return vals;
}

TEST(MemberSetTest, AddRemoveContainsMatchOracleAcrossShapes) {
  Rng rng(0xC0FFEE);
  for (int shape = 0; shape < 10; ++shape) {
    MemberSet ms;
    std::set<TupleId> oracle;
    for (TupleId v : ShapedValues(shape, &rng)) {
      ms.Add(v);
      oracle.insert(v);
    }
    ExpectMatches(ms, oracle);
    // Remove a random half; every container must shrink consistently
    // (bitmap→array demotion happens under the hood).
    std::vector<TupleId> all = ToVec(oracle);
    for (size_t i = 0; i < all.size(); i += 2) {
      EXPECT_TRUE(ms.Remove(all[i]));
      oracle.erase(all[i]);
    }
    EXPECT_FALSE(ms.Remove(999999999));  // absent: no-op, reports false
    ExpectMatches(ms, oracle);
    for (TupleId v : all) {
      EXPECT_EQ(ms.Contains(v), oracle.contains(v)) << v;
    }
  }
}

TEST(MemberSetTest, SetOperationsMatchOracle) {
  Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    const auto va = ShapedValues(trial, &rng);
    const auto vb = ShapedValues(trial + 2, &rng);
    const MemberSet a = MemberSet::FromTuples(va);
    const MemberSet b = MemberSet::FromTuples(vb);
    const std::set<TupleId> oa(va.begin(), va.end());
    const std::set<TupleId> ob(vb.begin(), vb.end());

    std::set<TupleId> u = oa, inter, diff;
    u.insert(ob.begin(), ob.end());
    for (TupleId t : oa) {
      if (ob.contains(t)) inter.insert(t);
      else diff.insert(t);
    }
    ExpectMatches(MemberSet::Union(a, b), u);
    ExpectMatches(MemberSet::Intersect(a, b), inter);
    ExpectMatches(MemberSet::Difference(a, b), diff);

    MemberSet c = a;
    c.UnionWith(b);
    ExpectMatches(c, u);
  }
}

TEST(MemberSetTest, SplitAsDifferenceReassemblesExactly) {
  // The WAL split-replay identity: right = old \ left, left ∪ right = old.
  Rng rng(7);
  const auto vals = ShapedValues(2, &rng);
  const MemberSet old = MemberSet::FromTuples(vals);
  std::vector<TupleId> half(vals.begin(),
                            vals.begin() + static_cast<long>(vals.size() / 3));
  const MemberSet left = MemberSet::Intersect(old, MemberSet::FromTuples(half));
  const MemberSet right = MemberSet::Difference(old, left);
  EXPECT_EQ(left.Size() + right.Size(), old.Size());
  EXPECT_TRUE(MemberSet::Intersect(left, right).Empty());
  EXPECT_TRUE(MemberSet::Union(left, right) == old);
}

TEST(MemberSetTest, EncodingRoundTripsAndIsDeterministic) {
  Rng rng(99);
  for (int shape = 0; shape < 5; ++shape) {
    auto vals = ShapedValues(shape, &rng);
    const MemberSet ms = MemberSet::FromTuples(vals);
    Encoder enc;
    ms.EncodeTo(&enc);

    // Same set built in a different insertion order encodes identically.
    std::shuffle(vals.begin(), vals.end(), std::mt19937(shape));
    MemberSet scrambled;
    for (TupleId v : vals) scrambled.Add(v);
    scrambled.Optimize();
    Encoder enc2;
    scrambled.EncodeTo(&enc2);
    EXPECT_EQ(enc.buffer(), enc2.buffer());

    MemberSet back;
    Decoder dec(enc.buffer());
    ASSERT_TRUE(back.DecodeFrom(&dec).ok());
    EXPECT_TRUE(dec.Done());
    EXPECT_TRUE(back == ms);
  }
}

TEST(MemberSetTest, DecodeRejectsCorruptPayloads) {
  const MemberSet ms = MemberSet::FromTuples({1, 2, 3, 1000, 70000});
  Encoder enc;
  ms.EncodeTo(&enc);
  const std::vector<uint8_t>& good = enc.buffer();
  // Truncations at every prefix either fail cleanly or round-trip: they must
  // never crash or mis-size.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    MemberSet victim;
    Decoder dec(good.data(), cut);
    const Status s = victim.DecodeFrom(&dec);
    if (s.ok()) EXPECT_LE(victim.Size(), ms.Size());
  }
}

TEST(MemberSetTest, CompressionBeatsRawVectorsOnRunHeavyData) {
  // A contiguous block — the shape initPRKB produces — must compress to a
  // tiny fraction of the raw 4-byte-per-tuple footprint (ISSUE: ≥5×).
  std::vector<TupleId> run(100000);
  for (size_t i = 0; i < run.size(); ++i) run[i] = static_cast<TupleId>(i);
  MemberSet ms = MemberSet::FromTuples(run);
  ms.Optimize();
  EXPECT_LT(ms.SizeBytes() * 5, run.size() * sizeof(TupleId));
  EXPECT_GE(ms.ContainerCount(), 1u);
}

}  // namespace
}  // namespace prkb::core
