// Deferred-insert buffer tests (prkb/insert_buffer.h, DESIGN.md §14):
// buffer semantics on the chain, snapshot round trips, the eager-vs-buffered
// differential (flush route is byte-identical to eager placement, scan route
// is winner-identical), cap-triggered synchronous flushes, WAL crash
// recovery through buffered appends and mid-flush torn tails, and the
// stripe-locked concurrent append path.
#include "prkb/insert_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/serial.h"
#include "edbms/cipherbase_qpf.h"
#include "edbms/service_provider.h"
#include "prkb/concurrent.h"
#include "prkb/pop.h"
#include "prkb/selection.h"
#include "prkb/wal.h"
#include "tests/test_util.h"

namespace prkb::core {
namespace {

namespace fs = std::filesystem;
using edbms::CompareOp;
using edbms::TupleId;

// ---- InsertBuffer unit tests ----------------------------------------------

TEST(InsertBufferTest, AppendRemoveKeepOrder) {
  InsertBuffer buf;
  EXPECT_TRUE(buf.Empty());
  buf.Append(7);
  buf.Append(3);
  buf.Append(11);
  EXPECT_EQ(buf.Size(), 3u);
  EXPECT_TRUE(buf.Contains(3));
  EXPECT_FALSE(buf.Contains(4));
  EXPECT_EQ(buf.order(), (std::vector<TupleId>{7, 3, 11}));

  EXPECT_TRUE(buf.Remove(3));
  EXPECT_FALSE(buf.Remove(3));  // already gone
  EXPECT_EQ(buf.order(), (std::vector<TupleId>{7, 11}));

  std::vector<TupleId> out = {99};
  buf.AppendTo(&out);
  EXPECT_EQ(out, (std::vector<TupleId>{99, 7, 11}));

  buf.Clear();
  EXPECT_TRUE(buf.Empty());
  EXPECT_FALSE(buf.Contains(7));
}

TEST(InsertBufferTest, EncodeDecodeRoundTrip) {
  InsertBuffer buf;
  buf.Append(42);
  buf.Append(1);
  buf.Append(100000);
  Encoder enc;
  buf.EncodeTo(&enc);

  InsertBuffer copy;
  copy.Append(555);  // DecodeFrom must clear pre-existing content
  Decoder dec(enc.buffer());
  ASSERT_TRUE(copy.DecodeFrom(&dec).ok());
  EXPECT_EQ(copy.order(), buf.order());
  EXPECT_FALSE(copy.Contains(555));
}

TEST(InsertBufferTest, DecodeRejectsDuplicateTuple) {
  Encoder enc;
  enc.PutVarint(2);
  enc.PutVarint(5);
  enc.PutVarint(5);
  InsertBuffer buf;
  Decoder dec(enc.buffer());
  EXPECT_FALSE(buf.DecodeFrom(&dec).ok());
}

// ---- Chain-level buffer semantics -----------------------------------------

class BufferSemanticsTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2026);
    plain_ = testutil::RandomTable(240, 2, &rng, 0, 999);
    db_ = std::make_unique<edbms::CipherbaseEdbms>(
        edbms::CipherbaseEdbms::FromPlainTable(77, plain_));
  }

  TupleId Store(edbms::Value a, edbms::Value b) {
    plain_.AddRow({a, b});
    return db_->Insert({a, b});
  }

  edbms::PlainTable plain_{2};
  std::unique_ptr<edbms::CipherbaseEdbms> db_;
};

TEST_F(BufferSemanticsTest, BufferedTupleStaysOffChainUntilFlush) {
  PrkbOptions opts;
  opts.buffered_inserts = true;
  PrkbIndex index(db_.get(), opts);
  index.EnableAttr(0);
  index.Select(db_->MakeComparison(0, CompareOp::kGe, 500));

  const TupleId tid = Store(123, 456);
  index.PlaceStored(tid);
  const Pop& pop = index.pop(0);
  EXPECT_TRUE(pop.insert_buffer().Contains(tid));
  EXPECT_EQ(pop.partition_of(tid), Pop::kNoPartition);
  EXPECT_TRUE(pop.Validate().ok());

  index.FlushBuffered(0);
  EXPECT_TRUE(pop.insert_buffer().Empty());
  EXPECT_NE(pop.partition_of(tid), Pop::kNoPartition);
  EXPECT_TRUE(pop.Validate().ok());
  EXPECT_TRUE(pop.ValidateAgainstPlain(testutil::ColumnOf(plain_, 0)).ok());
}

TEST_F(BufferSemanticsTest, DeleteOfBufferedTupleJustDropsIt) {
  PrkbOptions opts;
  opts.buffered_inserts = true;
  PrkbIndex index(db_.get(), opts);
  index.EnableAttr(0);
  const TupleId tid = Store(321, 9);
  const uint64_t uses0 = db_->uses();
  index.PlaceStored(tid);
  index.EraseFromChains(tid);
  EXPECT_EQ(db_->uses(), uses0);  // append + unbuffer: zero QPF end to end
  EXPECT_FALSE(index.pop(0).insert_buffer().Contains(tid));
  EXPECT_EQ(index.pop(0).partition_of(tid), Pop::kNoPartition);
}

TEST_F(BufferSemanticsTest, CapTriggersSynchronousFlush) {
  PrkbOptions opts;
  opts.buffered_inserts = true;
  opts.max_buffered_inserts = 3;
  PrkbIndex index(db_.get(), opts);
  index.EnableAttr(0);
  index.Select(db_->MakeComparison(0, CompareOp::kGe, 500));

  std::vector<TupleId> tids;
  for (int i = 0; i < 3; ++i) tids.push_back(Store(100 + 17 * i, 0));
  index.PlaceStored(tids[0]);
  index.PlaceStored(tids[1]);
  EXPECT_EQ(index.pop(0).insert_buffer().Size(), 2u);
  index.PlaceStored(tids[2]);  // reaches the cap: flushes in place
  EXPECT_TRUE(index.pop(0).insert_buffer().Empty());
  for (const TupleId tid : tids) {
    EXPECT_NE(index.pop(0).partition_of(tid), Pop::kNoPartition);
  }
}

TEST_F(BufferSemanticsTest, SnapshotRoundTripPreservesBuffer) {
  PrkbOptions opts;
  opts.buffered_inserts = true;
  PrkbIndex index(db_.get(), opts);
  index.EnableAttr(0);
  index.Select(db_->MakeComparison(0, CompareOp::kGe, 500));
  index.PlaceStored(Store(42, 0));
  index.PlaceStored(Store(977, 0));
  ASSERT_EQ(index.pop(0).insert_buffer().Size(), 2u);

  Encoder enc;
  index.pop(0).EncodeTo(&enc);
  Pop copy;
  Decoder dec(enc.buffer());
  ASSERT_TRUE(copy.DecodeFrom(&dec).ok());
  EXPECT_EQ(copy.insert_buffer().order(), index.pop(0).insert_buffer().order());
  Encoder enc2;
  copy.EncodeTo(&enc2);
  EXPECT_EQ(enc2.buffer(), enc.buffer());
}

// ---- Eager vs buffered differential ---------------------------------------

/// Byte image of one chain (memberships, cuts, cache, buffer).
std::vector<uint8_t> PopBytes(const Pop& pop) {
  Encoder enc;
  pop.EncodeTo(&enc);
  return enc.Release();
}

class DifferentialTest : public BufferSemanticsTest {};

TEST_F(DifferentialTest, FlushRouteIsByteIdenticalToEagerPlacement) {
  // Two indexes over the SAME store see identical trapdoors and tuples, so
  // the buffered index's flush must reproduce the eager chains bit for bit
  // — and spend exactly as many QPF uses, just in fewer round trips.
  PrkbOptions eager_opts;
  PrkbOptions buf_opts;
  buf_opts.buffered_inserts = true;
  // High transport latency prices the one-off flush below the recurring
  // scan at the first query that touches the chain.
  eager_opts.rt_latency_hint_ns = 300000.0;
  buf_opts.rt_latency_hint_ns = 300000.0;
  PrkbIndex eager(db_.get(), eager_opts);
  PrkbIndex buffered(db_.get(), buf_opts);
  for (PrkbIndex* idx : {&eager, &buffered}) {
    idx->EnableAttr(0);
    idx->EnableAttr(1);
  }

  // Warm both chains with the same trapdoor objects (comparison-only: the
  // byte-identity contract excludes coarsen-merge fallbacks).
  for (const edbms::Value v : {300, 700, 150, 850, 500}) {
    const auto td0 = db_->MakeComparison(0, CompareOp::kGe, v);
    const auto td1 = db_->MakeComparison(1, CompareOp::kLt, v + 23);
    testutil::Sorted(eager.Select(td0));
    testutil::Sorted(buffered.Select(td0));
    eager.Select(td1);
    buffered.Select(td1);
  }

  // A batch of inserts: eager places now, buffered defers.
  std::vector<TupleId> fresh;
  Rng rng(99);
  for (int i = 0; i < 25; ++i) {
    fresh.push_back(
        Store(rng.UniformInt64(0, 999), rng.UniformInt64(0, 999)));
  }
  const uint64_t eager0 = db_->uses();
  for (const TupleId tid : fresh) eager.PlaceStored(tid);
  const uint64_t eager_spend = db_->uses() - eager0;
  const uint64_t buf0 = db_->uses();
  for (const TupleId tid : fresh) buffered.PlaceStored(tid);
  EXPECT_EQ(db_->uses(), buf0);  // appends are zero-QPF
  EXPECT_EQ(buffered.pop(0).insert_buffer().Size(), fresh.size());

  // The next selection flushes; after it both indexes must agree bit for bit.
  const auto td = db_->MakeComparison(0, CompareOp::kGe, 450);
  const uint64_t esel0 = db_->uses();
  const auto ewin = testutil::Sorted(eager.Select(td));
  const uint64_t eager_sel = db_->uses() - esel0;
  const uint64_t bsel0 = db_->uses();
  const auto bwin = testutil::Sorted(buffered.Select(td));
  const uint64_t buf_spend = db_->uses() - bsel0;

  EXPECT_EQ(bwin, ewin);
  const edbms::PlainPredicate pred{
      0, edbms::PredicateKind::kComparison, CompareOp::kGe, 450, 0};
  EXPECT_EQ(bwin, testutil::OracleSelect(plain_, pred, db_.get()));
  EXPECT_TRUE(buffered.pop(0).insert_buffer().Empty());
  EXPECT_EQ(PopBytes(buffered.pop(0)), PopBytes(eager.pop(0)));

  // Attribute 1 still holds its buffer; flushing it directly must also land
  // on the eager bytes.
  EXPECT_EQ(buffered.pop(1).insert_buffer().Size(), fresh.size());
  const uint64_t bf0 = db_->uses();
  buffered.FlushBuffered(1);
  const uint64_t buf_flush1 = db_->uses() - bf0;
  EXPECT_EQ(PopBytes(buffered.pop(1)), PopBytes(eager.pop(1)));
  // Same placement probes + same selection probes, deferred vs eager
  // (eager_spend covers both attributes' placements; the buffered side paid
  // attr 0 inside the select and attr 1 just now — fewer round trips, equal
  // QPF uses).
  EXPECT_EQ(buf_spend + buf_flush1, eager_spend + eager_sel);
}

TEST_F(DifferentialTest, ScanRouteAnswersExactlyWithoutFlushing) {
  PrkbOptions eager_opts;
  PrkbOptions buf_opts;
  buf_opts.buffered_inserts = true;
  // A sub-1 horizon prices the scan below any flush on a multi-partition
  // chain, so the buffer stays resident across queries.
  buf_opts.buffer_flush_horizon = 0.25;
  PrkbIndex eager(db_.get(), eager_opts);
  PrkbIndex buffered(db_.get(), buf_opts);
  eager.EnableAttr(0);
  buffered.EnableAttr(0);
  for (const edbms::Value v : {250, 750, 500}) {
    const auto td = db_->MakeComparison(0, CompareOp::kGe, v);
    eager.Select(td);
    buffered.Select(td);
  }

  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const TupleId tid = Store(rng.UniformInt64(0, 999), 0);
    eager.PlaceStored(tid);
    buffered.PlaceStored(tid);
  }
  ASSERT_EQ(buffered.pop(0).insert_buffer().Size(), 10u);

  // Fresh predicate: chain answer + buffer scan merge, buffer untouched.
  const auto td = db_->MakeComparison(0, CompareOp::kGe, 333);
  const auto expect = testutil::Sorted(eager.Select(td));
  EXPECT_EQ(testutil::Sorted(buffered.Select(td)), expect);
  EXPECT_EQ(buffered.pop(0).insert_buffer().Size(), 10u);

  // Repeat predicate: fast-path cache hit still merges the buffer scan.
  edbms::SelectionStats stats;
  EXPECT_EQ(testutil::Sorted(buffered.Select(td, &stats)), expect);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.qpf_uses, 10u);  // exactly one evaluation per buffered tuple
  EXPECT_EQ(buffered.pop(0).insert_buffer().Size(), 10u);
  EXPECT_TRUE(buffered.pop(0).Validate().ok());
}

// ---- WAL: buffered appends and mid-flush crashes --------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<uint8_t> StateBytes(const PrkbIndex& index) {
  Encoder enc;
  for (edbms::AttrId attr : index.EnabledAttrs()) {
    enc.PutU32(attr);
    index.pop(attr).EncodeTo(&enc);
  }
  return enc.Release();
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void CloneWalDir(const std::string& src, const std::string& dst,
                 size_t log_bytes) {
  fs::remove_all(dst);
  fs::create_directories(dst);
  if (fs::exists(src + "/snapshot.prkb")) {
    fs::copy_file(src + "/snapshot.prkb", dst + "/snapshot.prkb");
  }
  auto log = ReadFile(src + "/wal.log");
  if (log_bytes < log.size()) log.resize(log_bytes);
  WriteFile(dst + "/wal.log", log);
}

class WalBufferTest : public BufferSemanticsTest {
 protected:
  static PrkbOptions BufferedOpts() {
    PrkbOptions opts;
    opts.buffered_inserts = true;
    opts.rt_latency_hint_ns = 300000.0;  // selections flush
    return opts;
  }
};

TEST_F(WalBufferTest, CrashRecoveryReplaysDeferredState) {
  const std::string dir = FreshDir("ibuf_wal_diff");
  PrkbIndex live(db_.get(), BufferedOpts());
  WalOptions wopts;
  wopts.fsync_on_commit = false;
  wopts.compact_threshold_bytes = 0;
  auto wal = PrkbWal::Open(&live, dir, wopts);
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  live.EnableAttr(0);
  live.EnableAttr(1);
  ASSERT_TRUE((*wal)->Commit().ok());

  // Mixed workload: splits, buffered appends, a delete that unbuffers, a
  // flush-triggering selection, and a tail of appends left UNFLUSHED — the
  // deferred state itself must be durable.
  std::vector<std::vector<uint8_t>> states;
  std::vector<size_t> log_sizes;
  auto checkpoint = [&] {
    states.push_back(StateBytes(live));
    log_sizes.push_back(fs::file_size(dir + "/wal.log"));
  };
  for (const edbms::Value v : {200, 800, 500}) {
    live.Select(db_->MakeComparison(0, CompareOp::kGe, v));
    checkpoint();
  }
  std::vector<TupleId> fresh;
  for (int i = 0; i < 6; ++i) {
    fresh.push_back(Store(100 + 141 * i, 13 * i));
    live.PlaceStored(fresh.back());
    checkpoint();
  }
  live.EraseFromChains(fresh[2]);
  checkpoint();
  live.Select(db_->MakeComparison(0, CompareOp::kLt, 450));  // flushes attr 0
  checkpoint();
  live.PlaceStored(Store(999, 999));  // left pending at shutdown
  checkpoint();
  ASSERT_FALSE(live.pop(1).insert_buffer().Empty());

  for (size_t i = 0; i < states.size(); ++i) {
    const std::string rdir = FreshDir("ibuf_wal_replay");
    CloneWalDir(dir, rdir, log_sizes[i]);
    PrkbIndex recovered(db_.get(), BufferedOpts());
    const uint64_t qpf_before = db_->uses();
    auto rwal = PrkbWal::Open(&recovered, rdir, wopts);
    ASSERT_TRUE(rwal.ok()) << "checkpoint " << i << ": "
                           << rwal.status().message();
    EXPECT_EQ(db_->uses(), qpf_before) << "recovery re-paid QPF";
    EXPECT_EQ(StateBytes(recovered), states[i]) << "checkpoint " << i;
    for (edbms::AttrId attr : recovered.EnabledAttrs()) {
      EXPECT_TRUE(recovered.pop(attr).Validate().ok());
    }
  }
}

TEST_F(WalBufferTest, TornTailMidFlushRecoversValidPrefix) {
  const std::string dir = FreshDir("ibuf_wal_torn");
  WalOptions wopts;
  wopts.fsync_on_commit = false;
  wopts.compact_threshold_bytes = 0;
  {
    PrkbIndex live(db_.get(), BufferedOpts());
    auto wal = PrkbWal::Open(&live, dir, wopts);
    ASSERT_TRUE(wal.ok());
    live.EnableAttr(0);
    live.Select(db_->MakeComparison(0, CompareOp::kGe, 500));
    for (int i = 0; i < 8; ++i) live.PlaceStored(Store(991 - 113 * i, 0));
    // The flush emits add records then the kBufFlush marker; tearing
    // anywhere inside that run must leave a validly-buffered suffix.
    live.Select(db_->MakeComparison(0, CompareOp::kLt, 300));
    live.PlaceStored(Store(640, 0));
  }
  const auto log = ReadFile(dir + "/wal.log");
  ASSERT_GT(log.size(), 64u);

  for (size_t cut = 8; cut <= log.size(); cut += 7) {
    const std::string rdir = FreshDir("ibuf_wal_torn_replay");
    CloneWalDir(dir, rdir, cut);
    PrkbIndex recovered(db_.get(), BufferedOpts());
    auto rwal = PrkbWal::Open(&recovered, rdir, wopts);
    ASSERT_TRUE(rwal.ok()) << "cut at " << cut << ": "
                           << rwal.status().message();
    if (recovered.IsEnabled(0)) {
      ASSERT_TRUE(recovered.pop(0).Validate().ok()) << "cut at " << cut;
    }
    const auto once = StateBytes(recovered);
    PrkbIndex again(db_.get(), BufferedOpts());
    auto rwal2 = PrkbWal::Open(&again, rdir, wopts);
    ASSERT_TRUE(rwal2.ok());
    EXPECT_EQ(StateBytes(again), once);
  }
}

// ---- Concurrent facade: stripe-locked appends -----------------------------

TEST_F(BufferSemanticsTest, ConcurrentBufferedInsertsStayExact) {
  PrkbOptions opts;
  opts.buffered_inserts = true;
  opts.rt_latency_hint_ns = 300000.0;
  ConcurrentPrkbIndex index(db_.get(), opts);
  index.EnableAttr(0);
  index.EnableAttr(1);
  index.Select(db_->MakeComparison(0, CompareOp::kGe, 500));
  index.Select(db_->MakeComparison(1, CompareOp::kLt, 500));

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20;
  // Rows and trapdoors are produced up front: encryption and trapdoor
  // issuance live in the client-side DataOwner, which sits outside the
  // SP-side concurrency story (same idiom as bench_concurrent).
  std::vector<std::vector<std::vector<edbms::Value>>> rows(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    Rng rng(1000 + w);
    for (int i = 0; i < kPerWriter; ++i) {
      rows[w].push_back({rng.UniformInt64(0, 999), rng.UniformInt64(0, 999)});
    }
  }
  std::vector<std::vector<edbms::Trapdoor>> reader_tds(2);
  for (int r = 0; r < 2; ++r) {
    Rng rng(50 + r);
    for (int i = 0; i < 15; ++i) {
      reader_tds[r].push_back(db_->MakeComparison(
          static_cast<edbms::AttrId>(i % 2), CompareOp::kGe,
          rng.UniformInt64(0, 999)));
    }
  }

  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      ready.fetch_add(1);
      while (ready.load() < kWriters) {
      }
      for (const auto& row : rows[w]) index.Insert(row);
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      for (const auto& td : reader_tds[r]) index.Select(td);
    });
  }
  for (auto& t : threads) t.join();

  // Every chain still satisfies the off-chain-buffer invariant...
  index.WithLocked([](PrkbIndex& inner) {
    for (edbms::AttrId attr : inner.EnabledAttrs()) {
      EXPECT_TRUE(inner.pop(attr).Validate().ok());
    }
    return 0;
  });
  // ...and final answers match the exhaustive baseline exactly.
  for (const edbms::Value v : {111, 555, 888}) {
    for (const edbms::AttrId attr : {0u, 1u}) {
      const auto td = db_->MakeComparison(attr, CompareOp::kGe, v);
      const auto expect =
          testutil::Sorted(edbms::BaselineScanner(db_.get()).Select(td));
      EXPECT_EQ(testutil::Sorted(index.Select(td)), expect);
    }
  }
}

}  // namespace
}  // namespace prkb::core
