#include "prkb/bootstrap.h"

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"

namespace prkb::core {
namespace {

using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::Value;

TEST(BootstrapTest, FiftyQueriesBuildAUsefulChain) {
  Rng data_rng(1);
  auto plain = testutil::RandomTable(5000, 1, &data_rng, 0, 1'000'000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(42, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);

  const auto res = BootstrapPrkb(&index, &db, 0, 0, 1'000'000, 50);
  EXPECT_EQ(res.queries_issued, 50u);
  EXPECT_EQ(res.k_before, 1u);
  // Evenly spread constants over a dense uniform column: essentially every
  // bootstrap query is inequivalent.
  EXPECT_GE(res.k_after, 45u);
  EXPECT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());

  // The paper's point: post-bootstrap queries are already cheap.
  workload::QueryGen gen(0, 1'000'000, 3);
  for (int i = 0; i < 10; ++i) {
    const PlainPredicate p = gen.RandomComparison(0);
    edbms::SelectionStats st;
    const auto got = index.Select(db.MakeComparison(p.attr, p.op, p.lo), &st);
    EXPECT_EQ(testutil::Sorted(got), testutil::OracleSelect(plain, p));
    EXPECT_LT(st.qpf_uses, 5000u / 10);
  }
}

TEST(BootstrapTest, RepeatedBootstrapsKeepRefining) {
  Rng data_rng(2);
  auto plain = testutil::RandomTable(2000, 1, &data_rng, 0, 100'000);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(42, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  const auto first = BootstrapPrkb(&index, &db, 0, 0, 100'000, 30, 1);
  const auto second = BootstrapPrkb(&index, &db, 0, 0, 100'000, 30, 2);
  EXPECT_GT(second.k_after, first.k_after);  // jitter finds new cuts
  EXPECT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok());
}

TEST(BootstrapTest, DegenerateInputsAreNoOps) {
  Rng data_rng(3);
  auto plain = testutil::RandomTable(10, 1, &data_rng, 0, 100);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(42, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  EXPECT_EQ(BootstrapPrkb(&index, &db, 0, 0, 100, 0).queries_issued, 0u);
  EXPECT_EQ(BootstrapPrkb(&index, &db, 0, 100, 100, 5).queries_issued, 0u);
  EXPECT_EQ(BootstrapPrkb(&index, &db, 9, 0, 100, 5).queries_issued, 0u);
}

TEST(BootstrapTest, KIsBoundedByQueryAndValueCounts) {
  Rng data_rng(4);
  auto plain = testutil::RandomTable(50, 1, &data_rng, 0, 20);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(42, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  const auto res = BootstrapPrkb(&index, &db, 0, 0, 20, 100);
  // At most distinct-values partitions regardless of query count.
  EXPECT_LE(res.k_after, 21u);
  EXPECT_LE(res.k_after, res.queries_issued + 1);
}

}  // namespace
}  // namespace prkb::core
