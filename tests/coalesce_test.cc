// Differential suite for the cross-query round bus (DESIGN.md §15): merged
// entries must change *when* bits travel, never *which* bits — winners stay
// byte-identical to an uncoalesced run and to the plaintext oracle, and
// per-selection accounting is preserved exactly. The concurrent-submitter
// cases double as the TSan target for the collector-election protocol.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "net/coalesce.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "prkb/concurrent.h"
#include "prkb/selection.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb {
namespace {

using edbms::ProbeRequest;
using edbms::SelectionStats;
using edbms::Trapdoor;
using edbms::TupleId;
using net::CoalescedEdbms;
using net::RoundBus;
using net::RoundBusOptions;

/// Deterministic Θ stand-in that records every backend entry it serves.
class FakeOracle : public edbms::QpfOracle {
 public:
  static bool Formula(const Trapdoor& td, TupleId tid) {
    return (td.uid + tid) % 3 == 0;
  }

  struct CapturedItem {
    const Trapdoor* td;
    uint64_t uid;
    TupleId tid;
  };

  uint64_t entries() const {
    return entries_.load(std::memory_order_relaxed);
  }
  std::vector<std::vector<CapturedItem>> captured() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return captured_;
  }

 private:
  bool DoEval(const Trapdoor& td, TupleId tid) override {
    entries_.fetch_add(1, std::memory_order_relaxed);
    return Formula(td, tid);
  }
  BitVector DoEvalMany(std::span<const ProbeRequest> reqs) override {
    entries_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      auto& cap = captured_.emplace_back();
      cap.reserve(reqs.size());
      for (const ProbeRequest& r : reqs) {
        cap.push_back(CapturedItem{r.td, r.td->uid, r.tid});
      }
    }
    BitVector out(reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
      out.Assign(i, Formula(*reqs[i].td, reqs[i].tid));
    }
    return out;
  }

  std::atomic<uint64_t> entries_{0};
  mutable std::mutex mu_;
  std::vector<std::vector<CapturedItem>> captured_;
};

Trapdoor MakeFakeTrapdoor(uint64_t uid) {
  Trapdoor td;
  td.attr = static_cast<edbms::AttrId>(uid % 7);
  td.uid = uid;
  td.blob.assign(edbms::kTrapdoorBlobSize,
                 static_cast<uint8_t>(uid * 37 + 11));
  return td;
}

TEST(RoundBusTest, LoneSubmissionIsPassthrough) {
  FakeOracle fake;
  RoundBus bus(&fake);  // linger 0 until a fitted latency arrives

  const Trapdoor td = MakeFakeTrapdoor(5);
  std::vector<ProbeRequest> reqs;
  for (TupleId tid = 0; tid < 9; ++tid) reqs.push_back({&td, tid});

  const BitVector bits = bus.Exchange(reqs);
  ASSERT_EQ(bits.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(bits.Get(i), FakeOracle::Formula(td, reqs[i].tid));
  }
  EXPECT_EQ(fake.entries(), 1u);
  const RoundBus::Stats st = bus.stats();
  EXPECT_EQ(st.rounds, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.merged_rounds, 0u);
  EXPECT_EQ(st.linger_ns, 0u);
}

TEST(RoundBusTest, DefaultSubmitAwaitMatchesEvalMany) {
  // The split-phase surface on a plain oracle (no bus): bits and counters
  // identical to EvalMany.
  FakeOracle a;
  FakeOracle b;
  const Trapdoor td = MakeFakeTrapdoor(9);
  std::vector<ProbeRequest> reqs;
  for (TupleId tid = 0; tid < 17; ++tid) reqs.push_back({&td, tid});

  const BitVector direct = a.EvalMany(reqs);
  const edbms::ProbeTicket t = b.SubmitMany(reqs);
  const BitVector split = b.AwaitMany(t);

  ASSERT_EQ(direct.size(), split.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct.Get(i), split.Get(i));
  }
  EXPECT_EQ(a.uses(), b.uses());
  EXPECT_EQ(a.round_trips(), b.round_trips());
  EXPECT_EQ(a.batches(), b.batches());
}

TEST(RoundBusTest, AdaptiveLingerFollowsFittedLatency) {
  FakeOracle fake;
  RoundBusOptions opts;  // defaults: adaptive, frac 1/8, floor 100µs
  RoundBus bus(&fake, opts);

  EXPECT_EQ(bus.linger_ns(), 0u);
  bus.SetFittedLatency(10'000);  // loopback-grade: stays zero
  EXPECT_EQ(bus.linger_ns(), 0u);
  bus.SetFittedLatency(1'000'000);
  EXPECT_EQ(bus.linger_ns(), 125'000u);
  bus.SetFittedLatency(1'000'000'000);  // clamped
  EXPECT_EQ(bus.linger_ns(), opts.max_linger_ns);
  bus.SetFittedLatency(0);  // transport got fast again: back to passthrough
  EXPECT_EQ(bus.linger_ns(), 0u);
}

TEST(RoundBusTest, ConcurrentSubmittersMergeIntoFewerEntries) {
  FakeOracle fake;
  RoundBusOptions opts;
  opts.adaptive_linger = false;
  opts.linger_ns = 5'000'000;  // 5ms: every thread's round lands in-window
  RoundBus bus(&fake, opts);

  constexpr size_t kThreads = 8;
  constexpr size_t kRoundsPerThread = 5;
  constexpr size_t kReqsPerRound = 16;

  std::vector<Trapdoor> tds;
  tds.reserve(kThreads);
  for (size_t i = 0; i < kThreads; ++i) {
    tds.push_back(MakeFakeTrapdoor(100 + i));
  }

  std::atomic<size_t> ready{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (size_t r = 0; r < kRoundsPerThread; ++r) {
        std::vector<ProbeRequest> reqs;
        reqs.reserve(kReqsPerRound);
        for (size_t i = 0; i < kReqsPerRound; ++i) {
          reqs.push_back(
              {&tds[w], static_cast<TupleId>(r * kReqsPerRound + i)});
        }
        const BitVector bits = bus.Exchange(reqs);
        if (bits.size() != reqs.size()) {
          wrong.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < reqs.size(); ++i) {
          if (bits.Get(i) != FakeOracle::Formula(tds[w], reqs[i].tid)) {
            wrong.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(wrong.load(), 0u);
  const RoundBus::Stats st = bus.stats();
  EXPECT_EQ(st.rounds, kThreads * kRoundsPerThread);
  EXPECT_EQ(st.requests, kThreads * kRoundsPerThread * kReqsPerRound);
  // With a 5ms window and µs-scale rounds, concurrent selections must share
  // entries; demanding ≤ half leaves wide scheduling headroom.
  EXPECT_LE(fake.entries(), kThreads * kRoundsPerThread / 2);
  EXPECT_GT(st.merged_rounds, 0u);
  EXPECT_GT(bus.factor(), 1.0);
}

TEST(RoundBusTest, ValueEqualTrapdoorsDedupAcrossRequests) {
  FakeOracle fake;
  RoundBusOptions opts;
  // A nonzero window so Submit queues instead of taking the lone-caller
  // passthrough; queue order then makes the merge deterministic.
  opts.linger_ns = 2'000'000;
  RoundBus bus(&fake, opts);
  const Trapdoor original = MakeFakeTrapdoor(77);
  const Trapdoor copy = original;  // value-equal, distinct address
  ASSERT_NE(&original, &copy);

  std::vector<ProbeRequest> r1;
  std::vector<ProbeRequest> r2;
  for (TupleId tid = 0; tid < 4; ++tid) r1.push_back({&original, tid});
  for (TupleId tid = 4; tid < 8; ++tid) r2.push_back({&copy, tid});

  // Two rounds queued before any Await: the first waiter collects both into
  // one entry.
  const uint64_t t1 = bus.Submit(r1);
  const uint64_t t2 = bus.Submit(r2);
  const BitVector b1 = bus.Await(t1);
  const BitVector b2 = bus.Await(t2);

  ASSERT_EQ(b1.size(), 4u);
  ASSERT_EQ(b2.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(b1.Get(i), FakeOracle::Formula(original, i));
    EXPECT_EQ(b2.Get(i), FakeOracle::Formula(copy, i + 4));
  }
  EXPECT_EQ(fake.entries(), 1u);
  const auto captured = fake.captured();
  ASSERT_EQ(captured.size(), 1u);
  // The merged entry references one canonical trapdoor for both selections.
  const Trapdoor* canon = captured[0][0].td;
  for (const auto& item : captured[0]) {
    EXPECT_EQ(item.td, canon);
    EXPECT_EQ(item.uid, original.uid);
  }
  EXPECT_GE(bus.stats().dedup_tds, 1u);
  EXPECT_GE(bus.stats().merged_rounds, 2u);
}

TEST(RoundBusTest, OverflowSplitsStayUnderTheEntryBudget) {
  FakeOracle fake;
  RoundBusOptions opts;
  opts.max_entry_bytes = 512;  // force splits with a handful of trapdoors
  RoundBus bus(&fake, opts);

  std::vector<Trapdoor> tds;
  for (uint64_t i = 0; i < 10; ++i) tds.push_back(MakeFakeTrapdoor(200 + i));
  std::vector<ProbeRequest> reqs;
  for (size_t i = 0; i < 200; ++i) {
    reqs.push_back({&tds[i % tds.size()], static_cast<TupleId>(i)});
  }

  const BitVector bits = bus.Exchange(reqs);
  ASSERT_EQ(bits.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(bits.Get(i), FakeOracle::Formula(*reqs[i].td, reqs[i].tid));
  }
  EXPECT_GT(fake.entries(), 1u);
  EXPECT_GE(bus.stats().overflow_splits, 1u);

  // Every shipped chunk must actually encode under the budget — the byte
  // estimate is required to be conservative w.r.t. the real wire codec.
  for (const auto& chunk : fake.captured()) {
    std::vector<ProbeRequest> chunk_reqs;
    chunk_reqs.reserve(chunk.size());
    for (const auto& item : chunk) chunk_reqs.push_back({item.td, item.tid});
    EXPECT_LE(net::EncodeEvalManyReq(chunk_reqs).size(),
              opts.max_entry_bytes);
  }
}

TEST(CoalescedEdbmsTest, WinnersAndAccountingMatchUncoalescedAndPlaintext) {
  workload::SyntheticSpec spec;
  spec.rows = 20000;
  spec.seed = 61;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(3, plain);
  CoalescedEdbms bus_db(&db);

  // Twin indexes over the same encrypted store: identical options and seed,
  // one probing direct, one through the bus. Selections only mutate index
  // state, so the runs cannot influence each other.
  core::PrkbIndex direct(&db, core::PrkbOptions{.seed = 11});
  core::PrkbIndex coalesced(&bus_db, core::PrkbOptions{.seed = 11});
  direct.EnableAttr(0);
  coalesced.EnableAttr(0);

  workload::QueryGen gen(spec.domain_lo, spec.domain_hi, 13);
  for (int q = 0; q < 60; ++q) {
    const auto p = gen.RandomComparison(0);
    const Trapdoor td = db.MakeComparison(p.attr, p.op, p.lo);

    SelectionStats st_direct;
    SelectionStats st_bus;
    std::vector<TupleId> w_direct = direct.Select(td, &st_direct);
    std::vector<TupleId> w_bus = coalesced.Select(td, &st_bus);
    std::sort(w_direct.begin(), w_direct.end());
    std::sort(w_bus.begin(), w_bus.end());

    ASSERT_EQ(w_direct, w_bus) << "query " << q;
    std::vector<TupleId> w_plain;
    for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
      if (p.Satisfies(plain.at(0, tid))) w_plain.push_back(tid);
    }
    ASSERT_EQ(w_bus, w_plain) << "query " << q;

    // Logical accounting is preserved exactly: same uses, same logical
    // round trips, query by query.
    EXPECT_EQ(st_direct.qpf_uses, st_bus.qpf_uses) << "query " << q;
    EXPECT_EQ(st_direct.qpf_round_trips, st_bus.qpf_round_trips)
        << "query " << q;
  }
}

TEST(CoalescedEdbmsTest, LingerZeroPassthroughThroughPrkbIndex) {
  workload::SyntheticSpec spec;
  spec.rows = 5000;
  spec.seed = 67;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(5, plain);
  CoalescedEdbms bus_db(&db);
  EXPECT_EQ(bus_db.bus().linger_ns(), 0u);
  EXPECT_EQ(bus_db.CoalescingFactor(), 1.0);

  core::PrkbIndex index(&bus_db, core::PrkbOptions{.seed = 3});
  index.EnableAttr(0);
  workload::QueryGen gen(spec.domain_lo, spec.domain_hi, 71);
  for (int q = 0; q < 20; ++q) {
    const auto p = gen.RandomComparison(0);
    std::vector<TupleId> got =
        index.Select(db.MakeComparison(p.attr, p.op, p.lo));
    std::sort(got.begin(), got.end());
    std::vector<TupleId> want;
    for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
      if (p.Satisfies(plain.at(0, tid))) want.push_back(tid);
    }
    ASSERT_EQ(got, want) << "query " << q;
  }
  // Single-stream, linger 0: every round flushed alone.
  const RoundBus::Stats st = bus_db.bus().stats();
  EXPECT_EQ(st.rounds, st.entries);
  EXPECT_EQ(st.merged_rounds, 0u);
}

TEST(CoalescedEdbmsTest, ConcurrentSelectionsStayExact) {
  // TSan target: many selections through one bus with a real linger window,
  // against ConcurrentPrkbIndex's shared-lock fast paths.
  workload::SyntheticSpec spec;
  spec.rows = 3000;
  spec.attrs = 4;
  spec.seed = 73;
  const auto plain = workload::MakeSyntheticTable(spec);
  auto db = edbms::CipherbaseEdbms::FromPlainTable(7, plain);
  RoundBusOptions opts;
  opts.adaptive_linger = false;
  opts.linger_ns = 50'000;
  CoalescedEdbms bus_db(&db, opts);

  core::ConcurrentPrkbIndex index(&bus_db, core::PrkbOptions{.seed = 5});
  for (edbms::AttrId a = 0; a < 4; ++a) index.EnableAttr(a);

  constexpr size_t kThreads = 8;
  // Trapdoors are issued up front: the data owner's issuing side is a
  // single-client surface, and the concurrency under test is the bus.
  struct Op {
    edbms::PlainPredicate p;
    edbms::Trapdoor td;
  };
  std::vector<std::vector<Op>> ops(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    workload::QueryGen gen(spec.domain_lo, spec.domain_hi, 100 + w);
    for (int q = 0; q < 10; ++q) {
      const auto attr = static_cast<edbms::AttrId>((w + q) % 4);
      const auto p = gen.RandomComparison(attr);
      ops[w].push_back(Op{p, db.MakeComparison(p.attr, p.op, p.lo)});
    }
  }
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (const Op& op : ops[w]) {
        std::vector<TupleId> got = index.Select(op.td);
        std::sort(got.begin(), got.end());
        std::vector<TupleId> want;
        for (TupleId tid = 0; tid < plain.num_rows(); ++tid) {
          if (op.p.Satisfies(plain.at(op.p.attr, tid))) want.push_back(tid);
        }
        if (got != want) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(wrong.load(), 0u);
}

}  // namespace
}  // namespace prkb
