// Wire-protocol codec properties: randomized round trips for every payload
// kind, and malformed-frame handling — truncated headers and payloads,
// oversized lengths, bad indices — must come back as clean Corruption
// statuses, never a crash or an allocation of attacker-chosen size.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "net/frame.h"

namespace prkb::net {
namespace {

using edbms::ProbeRequest;
using edbms::Trapdoor;
using edbms::TupleId;

Trapdoor RandomTrapdoor(Rng* rng) {
  Trapdoor td;
  td.attr = static_cast<edbms::AttrId>(rng->UniformInt64(0, 1000));
  td.kind = rng->UniformInt64(0, 1) == 0 ? edbms::PredicateKind::kComparison
                                         : edbms::PredicateKind::kBetween;
  td.uid = static_cast<uint64_t>(rng->UniformInt64(0, 1 << 30));
  const size_t blob_len = static_cast<size_t>(rng->UniformInt64(0, 64));
  td.blob.resize(blob_len);
  for (auto& b : td.blob) {
    b = static_cast<uint8_t>(rng->UniformInt64(0, 255));
  }
  return td;
}

bool SameTrapdoor(const Trapdoor& a, const Trapdoor& b) {
  return a.attr == b.attr && a.kind == b.kind && a.uid == b.uid &&
         a.blob == b.blob;
}

TEST(NetFrameTest, HeaderRoundTrip) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MsgType::kEvalManyReq, 0xDEADBEEFCAFEF00DULL, 12345, buf);
  MsgType type;
  uint64_t corr = 0;
  uint32_t len = 0;
  ASSERT_TRUE(DecodeFrameHeader(buf, &type, &corr, &len).ok());
  EXPECT_EQ(type, MsgType::kEvalManyReq);
  EXPECT_EQ(corr, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(len, 12345u);
}

TEST(NetFrameTest, HeaderRejectsBadMagic) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MsgType::kPingReq, 7, 0, buf);
  buf[0] ^= 0xFF;
  MsgType type;
  uint64_t corr;
  uint32_t len;
  const Status s = DecodeFrameHeader(buf, &type, &corr, &len);
  EXPECT_EQ(s.code(), Status::Code::kCorruption);
}

TEST(NetFrameTest, HeaderRejectsUnknownType) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MsgType::kPingReq, 7, 0, buf);
  buf[4] = 0;  // below the first valid MsgType
  MsgType type;
  uint64_t corr;
  uint32_t len;
  EXPECT_EQ(DecodeFrameHeader(buf, &type, &corr, &len).code(),
            Status::Code::kCorruption);
  buf[4] = 200;  // above the last
  EXPECT_EQ(DecodeFrameHeader(buf, &type, &corr, &len).code(),
            Status::Code::kCorruption);
}

TEST(NetFrameTest, HeaderRejectsOversizedLength) {
  uint8_t buf[kFrameHeaderBytes];
  EncodeFrameHeader(MsgType::kEvalBatchReq, 1, kMaxFramePayload + 1, buf);
  MsgType type;
  uint64_t corr;
  uint32_t len;
  EXPECT_EQ(DecodeFrameHeader(buf, &type, &corr, &len).code(),
            Status::Code::kCorruption);
}

TEST(NetFrameTest, EvalReqRoundTripRandomized) {
  Rng rng(101);
  for (int iter = 0; iter < 200; ++iter) {
    const Trapdoor td = RandomTrapdoor(&rng);
    const TupleId tid = static_cast<TupleId>(rng.UniformInt64(0, 1 << 20));
    const auto payload = EncodeEvalReq(td, tid);
    Trapdoor td2;
    TupleId tid2 = 0;
    ASSERT_TRUE(DecodeEvalReq(payload, &td2, &tid2).ok());
    EXPECT_TRUE(SameTrapdoor(td, td2));
    EXPECT_EQ(tid, tid2);
  }
}

TEST(NetFrameTest, EvalBatchReqRoundTripRandomized) {
  Rng rng(202);
  for (int iter = 0; iter < 100; ++iter) {
    const Trapdoor td = RandomTrapdoor(&rng);
    std::vector<TupleId> tids(static_cast<size_t>(rng.UniformInt64(0, 300)));
    for (auto& t : tids) {
      t = static_cast<TupleId>(rng.UniformInt64(0, 1 << 20));
    }
    const auto payload = EncodeEvalBatchReq(td, tids);
    Trapdoor td2;
    std::vector<TupleId> tids2;
    ASSERT_TRUE(DecodeEvalBatchReq(payload, &td2, &tids2).ok());
    EXPECT_TRUE(SameTrapdoor(td, td2));
    EXPECT_EQ(tids, tids2);
  }
}

TEST(NetFrameTest, EvalManyReqRoundTripRandomizedWithDedup) {
  Rng rng(303);
  for (int iter = 0; iter < 100; ++iter) {
    // A probe round's shape: few distinct trapdoors, many lanes referencing
    // them by pointer.
    std::vector<Trapdoor> tds(static_cast<size_t>(rng.UniformInt64(1, 6)));
    for (auto& td : tds) td = RandomTrapdoor(&rng);
    std::vector<ProbeRequest> reqs(
        static_cast<size_t>(rng.UniformInt64(1, 200)));
    for (auto& req : reqs) {
      req.td = &tds[static_cast<size_t>(
          rng.UniformInt64(0, static_cast<int64_t>(tds.size()) - 1))];
      req.tid = static_cast<TupleId>(rng.UniformInt64(0, 1 << 20));
    }
    const auto payload = EncodeEvalManyReq(reqs);
    ManyReq many;
    ASSERT_TRUE(DecodeEvalManyReq(payload, &many).ok());
    // Dedup must not exceed the distinct-trapdoor count.
    EXPECT_LE(many.tds.size(), tds.size());
    ASSERT_EQ(many.items.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_LT(many.items[i].td_index, many.tds.size());
      EXPECT_TRUE(SameTrapdoor(*reqs[i].td, many.tds[many.items[i].td_index]));
      EXPECT_EQ(reqs[i].tid, many.items[i].tid);
    }
  }
}

TEST(NetFrameTest, ResultRespRoundTripRandomized) {
  Rng rng(404);
  for (int iter = 0; iter < 200; ++iter) {
    BitVector bits(static_cast<size_t>(rng.UniformInt64(0, 500)));
    for (size_t i = 0; i < bits.size(); ++i) {
      bits.Assign(i, rng.UniformInt64(0, 1) == 1);
    }
    const auto payload = EncodeResultResp(bits);
    BitVector bits2;
    ASSERT_TRUE(DecodeResultResp(payload, &bits2).ok());
    EXPECT_TRUE(bits == bits2);
  }
}

TEST(NetFrameTest, ErrorRespRoundTrip) {
  Status decoded;
  ASSERT_TRUE(
      DecodeErrorResp(EncodeErrorResp(Status::NotFound("no such chain")),
                      &decoded)
          .ok());
  EXPECT_EQ(decoded.code(), Status::Code::kNotFound);
  EXPECT_EQ(decoded.message(), "no such chain");
}

TEST(NetFrameTest, ErrorRespNeverDecodesToOk) {
  // A confused peer shipping code 0 (OK) in an error frame must still
  // surface as an error.
  Status decoded;
  ASSERT_TRUE(DecodeErrorResp(EncodeErrorResp(Status::Ok()), &decoded).ok());
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.code(), Status::Code::kInternal);
}

TEST(NetFrameTest, StatsRespRoundTrip) {
  const std::vector<StatsEntry> entries = {
      {"qpf.uses", 12345}, {"net.frames_sent", 678}, {"", 0}};
  std::vector<StatsEntry> decoded;
  ASSERT_TRUE(DecodeStatsResp(EncodeStatsResp(entries), &decoded).ok());
  EXPECT_EQ(entries, decoded);
}

TEST(NetFrameTest, TruncatedPayloadsAreCorruptionNotCrash) {
  Rng rng(505);
  const Trapdoor td = RandomTrapdoor(&rng);
  std::vector<TupleId> tids = {1, 2, 3, 4, 5};
  std::vector<ProbeRequest> reqs;
  for (const TupleId t : tids) reqs.push_back(ProbeRequest{&td, t});
  BitVector bits(17, true);

  // Every strict prefix of a valid payload must fail its own decoder: the
  // length/count fields and the Done() check leave no prefix that parses.
  const auto check_prefixes = [](const std::vector<uint8_t>& full,
                                 auto&& decode) {
    for (size_t cut = 0; cut < full.size(); ++cut) {
      EXPECT_FALSE(decode(std::span<const uint8_t>(full.data(), cut)).ok())
          << "prefix of length " << cut << " of " << full.size()
          << " unexpectedly decoded";
    }
  };
  check_prefixes(EncodeEvalReq(td, 9), [](std::span<const uint8_t> p) {
    Trapdoor t;
    TupleId i;
    return DecodeEvalReq(p, &t, &i);
  });
  check_prefixes(EncodeEvalBatchReq(td, tids),
                 [](std::span<const uint8_t> p) {
                   Trapdoor t;
                   std::vector<TupleId> v;
                   return DecodeEvalBatchReq(p, &t, &v);
                 });
  check_prefixes(EncodeEvalManyReq(reqs), [](std::span<const uint8_t> p) {
    ManyReq m;
    return DecodeEvalManyReq(p, &m);
  });
  check_prefixes(EncodeResultResp(bits), [](std::span<const uint8_t> p) {
    BitVector b;
    return DecodeResultResp(p, &b);
  });
  check_prefixes(EncodeErrorResp(Status::Internal("x")),
                 [](std::span<const uint8_t> p) {
                   Status s;
                   return DecodeErrorResp(p, &s);
                 });
  check_prefixes(EncodeStatsResp(std::vector<StatsEntry>{{"a", 1}, {"b", 2}}),
                 [](std::span<const uint8_t> p) {
                   std::vector<StatsEntry> e;
                   return DecodeStatsResp(p, &e);
                 });
}

TEST(NetFrameTest, TrailingGarbageIsCorruption) {
  Rng rng(606);
  const Trapdoor td = RandomTrapdoor(&rng);
  auto payload = EncodeEvalReq(td, 3);
  payload.push_back(0xAB);
  Trapdoor td2;
  TupleId tid2;
  EXPECT_EQ(DecodeEvalReq(payload, &td2, &tid2).code(),
            Status::Code::kCorruption);
}

TEST(NetFrameTest, EvalManyRejectsOutOfRangeTrapdoorIndex) {
  // Hand-build a payload whose single item points past the trapdoor table.
  Rng rng(707);
  const Trapdoor td = RandomTrapdoor(&rng);
  Encoder enc;
  enc.PutVarint(1);
  EncodeTrapdoor(td, &enc);
  enc.PutVarint(1);
  enc.PutVarint(5);  // td_index 5 of a 1-entry table
  enc.PutU32(42);
  const auto payload = enc.Release();
  ManyReq many;
  EXPECT_EQ(DecodeEvalManyReq(payload, &many).code(),
            Status::Code::kCorruption);
}

TEST(NetFrameTest, ResultRespRejectsSizeMismatch) {
  // Claims 100 bits but carries only one byte of them.
  Encoder enc;
  enc.PutVarint(100);
  enc.PutU8(0xFF);
  const auto payload = enc.Release();
  BitVector bits;
  EXPECT_EQ(DecodeResultResp(payload, &bits).code(),
            Status::Code::kCorruption);
}

TEST(NetFrameTest, CountFieldCannotForceHugeAllocation) {
  // A batch request claiming 2^40 tuples in a 16-byte payload must fail the
  // count-vs-remaining check, not attempt the reserve.
  Rng rng(808);
  Trapdoor td = RandomTrapdoor(&rng);
  td.blob.clear();
  Encoder enc;
  EncodeTrapdoor(td, &enc);
  enc.PutVarint(uint64_t{1} << 40);
  const auto payload = enc.Release();
  Trapdoor td2;
  std::vector<TupleId> tids;
  EXPECT_EQ(DecodeEvalBatchReq(payload, &td2, &tids).code(),
            Status::Code::kCorruption);
}

}  // namespace
}  // namespace prkb::net
