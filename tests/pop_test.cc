#include "prkb/pop.h"

#include <vector>

#include "gtest/gtest.h"

namespace prkb::core {
namespace {

using edbms::TupleId;

edbms::Trapdoor FakeTrapdoor(uint64_t uid,
                             edbms::PredicateKind kind =
                                 edbms::PredicateKind::kComparison) {
  edbms::Trapdoor td;
  td.attr = 0;
  td.kind = kind;
  td.uid = uid;
  td.blob = {1, 2, 3};
  return td;
}

TEST(PopTest, InitSingleCoversAllTuples) {
  Pop pop;
  pop.InitSingle(5);
  EXPECT_EQ(pop.k(), 1u);
  EXPECT_EQ(pop.num_tuples(), 5u);
  EXPECT_EQ(pop.members_at(0).Size(), 5u);
  for (TupleId t = 0; t < 5; ++t) {
    EXPECT_EQ(pop.partition_of(t), pop.pid_at(0));
  }
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopTest, InitSingleEmptyTableHasNoChain) {
  Pop pop;
  pop.InitSingle(0);
  EXPECT_EQ(pop.k(), 0u);
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopTest, SplitCreatesOrderedChainAndCut) {
  Pop pop;
  pop.InitSingle(4);  // {0,1,2,3}
  const PartitionId pid = pop.pid_at(0);
  const uint64_t cut =
      pop.SplitPartition(pid, {0, 2}, {1, 3}, FakeTrapdoor(1), false);
  EXPECT_EQ(pop.k(), 2u);
  EXPECT_NE(cut, Pop::kNoCut);
  // Left half at position 0, right (keeping the old pid) at position 1.
  EXPECT_EQ(pop.pid_at(1), pid);
  EXPECT_EQ(pop.members_at(0).ToVector(), (std::vector<TupleId>{0, 2}));
  EXPECT_EQ(pop.members_at(1).ToVector(), (std::vector<TupleId>{1, 3}));
  EXPECT_EQ(pop.partition_of(0), pop.pid_at(0));
  EXPECT_EQ(pop.partition_of(1), pid);
  EXPECT_TRUE(pop.Validate().ok());

  const Pop::Cut* c = pop.FindCut(cut);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(pop.CutPos(*c), 1u);
  EXPECT_FALSE(c->left_label);
  EXPECT_TRUE(c->UsableForInsert());
}

TEST(PopTest, NestedSplitsKeepCutPositionsCorrect) {
  Pop pop;
  pop.InitSingle(8);
  const PartitionId p0 = pop.pid_at(0);
  const uint64_t cut1 = pop.SplitPartition(p0, {0, 1, 2, 3}, {4, 5, 6, 7},
                                           FakeTrapdoor(1), false);
  // Split the LEFT half; cut1 must shift right.
  const PartitionId left = pop.pid_at(0);
  const uint64_t cut2 =
      pop.SplitPartition(left, {0, 1}, {2, 3}, FakeTrapdoor(2), true);
  EXPECT_EQ(pop.k(), 3u);
  EXPECT_EQ(pop.CutPos(*pop.FindCut(cut2)), 1u);
  EXPECT_EQ(pop.CutPos(*pop.FindCut(cut1)), 2u);
  // Split the RIGHT-most partition.
  const PartitionId right = pop.pid_at(2);
  const uint64_t cut3 =
      pop.SplitPartition(right, {4, 6}, {5, 7}, FakeTrapdoor(3), false);
  EXPECT_EQ(pop.k(), 4u);
  EXPECT_EQ(pop.CutPos(*pop.FindCut(cut1)), 2u);
  EXPECT_EQ(pop.CutPos(*pop.FindCut(cut3)), 3u);
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopTest, AddTupleGrowsPartition) {
  Pop pop;
  pop.InitSingle(3);
  pop.AddTuple(pop.pid_at(0), 7);
  EXPECT_EQ(pop.num_tuples(), 4u);
  EXPECT_EQ(pop.partition_of(7), pop.pid_at(0));
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopTest, RemoveTupleKeepsNonEmptyPartition) {
  Pop pop;
  pop.InitSingle(3);
  pop.RemoveTuple(1);
  EXPECT_EQ(pop.num_tuples(), 2u);
  EXPECT_EQ(pop.partition_of(1), Pop::kNoPartition);
  EXPECT_EQ(pop.k(), 1u);
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopTest, EmptyingMiddlePartitionShrinksChain) {
  Pop pop;
  pop.InitSingle(4);
  pop.SplitPartition(pop.pid_at(0), {0}, {1, 2, 3}, FakeTrapdoor(1), false);
  pop.SplitPartition(pop.pid_at(1), {1}, {2, 3}, FakeTrapdoor(2), false);
  ASSERT_EQ(pop.k(), 3u);
  // Remove the middle partition's only tuple: POP_3 -> POP_2 (Sec. 7.2).
  pop.RemoveTuple(1);
  EXPECT_EQ(pop.k(), 2u);
  EXPECT_EQ(pop.members_at(0).ToVector(), (std::vector<TupleId>{0}));
  EXPECT_EQ(pop.members_at(1).ToVector(), (std::vector<TupleId>{2, 3}));
  EXPECT_TRUE(pop.Validate().ok());
  // A surviving cut still separates the two remaining partitions.
  size_t live = 0;
  for (const auto& cut : pop.cuts()) {
    if (!cut.dropped) {
      ++live;
      EXPECT_EQ(pop.CutPos(cut), 1u);
    }
  }
  EXPECT_GE(live, 1u);
}

TEST(PopTest, EmptyingHeadPartitionDropsEdgeCut) {
  Pop pop;
  pop.InitSingle(3);
  pop.SplitPartition(pop.pid_at(0), {0}, {1, 2}, FakeTrapdoor(1), false);
  pop.RemoveTuple(0);
  EXPECT_EQ(pop.k(), 1u);
  for (const auto& cut : pop.cuts()) EXPECT_TRUE(cut.dropped);
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopTest, EmptyingTailPartitionDropsEdgeCut) {
  Pop pop;
  pop.InitSingle(3);
  pop.SplitPartition(pop.pid_at(0), {0, 1}, {2}, FakeTrapdoor(1), true);
  pop.RemoveTuple(2);
  EXPECT_EQ(pop.k(), 1u);
  for (const auto& cut : pop.cuts()) EXPECT_TRUE(cut.dropped);
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopTest, MergeRetiresInteriorCutAndKeepsOuterOnes) {
  Pop pop;
  pop.InitSingle(6);
  pop.SplitPartition(pop.pid_at(0), {0, 1}, {2, 3, 4, 5}, FakeTrapdoor(1),
                     false);
  pop.SplitPartition(pop.pid_at(1), {2, 3}, {4, 5}, FakeTrapdoor(2), false);
  ASSERT_EQ(pop.k(), 3u);
  pop.MergeAt(1);  // merge {2,3} and {4,5}
  EXPECT_EQ(pop.k(), 2u);
  EXPECT_EQ(pop.members_at(1).Size(), 4u);
  size_t live = 0;
  for (const auto& cut : pop.cuts()) live += !cut.dropped;
  EXPECT_EQ(live, 1u);  // only the first cut survives
  EXPECT_TRUE(pop.Validate().ok());
}

TEST(PopTest, LinkBetweenCutsMakesThemInsertUsable) {
  Pop pop;
  pop.InitSingle(6);
  const auto between = FakeTrapdoor(9, edbms::PredicateKind::kBetween);
  const uint64_t c1 = pop.SplitPartition(pop.pid_at(0), {0, 1}, {2, 3, 4, 5},
                                         between, false);
  EXPECT_FALSE(pop.FindCut(c1)->UsableForInsert());
  const uint64_t c2 =
      pop.SplitPartition(pop.pid_at(1), {2, 3}, {4, 5}, between, true);
  pop.LinkBetweenCuts(c1, c2);
  EXPECT_TRUE(pop.FindCut(c1)->UsableForInsert());
  EXPECT_TRUE(pop.FindCut(c2)->UsableForInsert());
  // Dropping one end makes the other unusable again.
  pop.RemoveTuple(0);
  pop.RemoveTuple(1);  // head partition gone; c1 dropped
  EXPECT_EQ(pop.FindCut(c1), nullptr);
  EXPECT_FALSE(pop.FindCut(c2)->UsableForInsert());
}

TEST(PopTest, SizeBytesScalesWithTuplesAndCuts) {
  Pop pop;
  pop.InitSingle(1000);
  const size_t base = pop.SizeBytes();
  // Membership is compressed: 1000 contiguous tuples are one run container,
  // far below the raw vector<TupleId> footprint.
  EXPECT_GT(base, 0u);
  EXPECT_LT(pop.MembershipBytes(), pop.RawMembershipBytes());
  std::vector<TupleId> left, right;
  for (TupleId t = 0; t < 1000; ++t) (t < 500 ? left : right).push_back(t);
  edbms::Trapdoor td = FakeTrapdoor(1);
  td.blob.resize(41);
  pop.SplitPartition(pop.pid_at(0), left, right, td, false);
  EXPECT_GT(pop.SizeBytes(), base);
}

TEST(PopTest, ValidateAgainstPlainAcceptsBothOrientations) {
  // Values: tid0=5, tid1=1, tid2=9. Ascending chain {1} {5} {9}.
  std::vector<edbms::Value> plain = {5, 1, 9};
  Pop pop;
  pop.InitSingle(3);
  pop.SplitPartition(pop.pid_at(0), {1}, {0, 2}, FakeTrapdoor(1), true);
  pop.SplitPartition(pop.pid_at(1), {0}, {2}, FakeTrapdoor(2), true);
  EXPECT_TRUE(pop.ValidateAgainstPlain(plain).ok());

  // Descending chain {9} {5} {1} is equally valid knowledge.
  Pop desc;
  desc.InitSingle(3);
  desc.SplitPartition(desc.pid_at(0), {2}, {0, 1}, FakeTrapdoor(1), true);
  desc.SplitPartition(desc.pid_at(1), {0}, {1}, FakeTrapdoor(2), true);
  EXPECT_TRUE(desc.ValidateAgainstPlain(plain).ok());
}

TEST(PopTest, ValidateAgainstPlainRejectsBrokenChain) {
  // Chain {5} {1} {9} is neither ascending nor descending.
  std::vector<edbms::Value> plain = {5, 1, 9};
  Pop pop;
  pop.InitSingle(3);
  pop.SplitPartition(pop.pid_at(0), {0}, {1, 2}, FakeTrapdoor(1), true);
  pop.SplitPartition(pop.pid_at(1), {1}, {2}, FakeTrapdoor(2), true);
  EXPECT_FALSE(pop.ValidateAgainstPlain(plain).ok());
}

TEST(PopTest, ValidateAgainstPlainRejectsOverlappingRanges) {
  // tid0=1, tid1=3, tid2=2: partitions {1,3} {2} overlap in range.
  std::vector<edbms::Value> plain = {1, 3, 2};
  Pop pop;
  pop.InitSingle(3);
  pop.SplitPartition(pop.pid_at(0), {0, 1}, {2}, FakeTrapdoor(1), true);
  EXPECT_FALSE(pop.ValidateAgainstPlain(plain).ok());
}

}  // namespace
}  // namespace prkb::core
