// Randomised robustness suites:
//  - PopFuzz: long random mutation sequences keep every structural invariant;
//  - IoFuzz: bit-flipped / truncated snapshots never crash the decoder and
//    always surface an error status;
//  - DistributionSweep: selection exactness is independent of the data
//    distribution (the paper's footnote 10: uniform/normal/correlated/
//    anti-correlated behave alike).

#include <vector>

#include "edbms/cipherbase_qpf.h"
#include "gtest/gtest.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"
#include "tests/test_util.h"
#include "workload/query_gen.h"
#include "workload/synthetic_table.h"

namespace prkb::core {
namespace {

using edbms::CipherbaseEdbms;
using edbms::PlainPredicate;
using edbms::PlainTable;
using edbms::TupleId;
using edbms::Value;
using testutil::OracleSelect;
using testutil::Sorted;

class PopFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PopFuzzTest, RandomWorkloadPreservesEveryInvariant) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t rows = 30 + rng.UniformInt(0, 200);
  const Value domain = 1 + static_cast<Value>(rng.UniformInt(1, 500));
  PlainTable plain = testutil::RandomTable(rows, 1, &rng, 0, domain);
  auto db = CipherbaseEdbms::FromPlainTable(seed, plain);
  PrkbIndex index(&db, PrkbOptions{.seed = seed ^ 0x77});
  index.EnableAttr(0);

  for (int step = 0; step < 300; ++step) {
    const double dice = rng.UniformDouble();
    if (dice < 0.45) {
      PlainPredicate p{.attr = 0,
                       .op = static_cast<edbms::CompareOp>(
                           rng.UniformInt(0, 3)),
                       .lo = rng.UniformInt64(-5, domain + 5)};
      const auto got = index.Select(db.MakeComparison(0, p.op, p.lo));
      ASSERT_EQ(Sorted(got), OracleSelect(plain, p, &db)) << "step " << step;
    } else if (dice < 0.65) {
      const Value lo = rng.UniformInt64(-5, domain + 5);
      const Value hi = lo + rng.UniformInt64(0, domain / 2 + 1);
      PlainPredicate p{.attr = 0,
                       .kind = edbms::PredicateKind::kBetween,
                       .lo = lo,
                       .hi = hi};
      const auto got = index.Select(db.MakeBetween(0, lo, hi));
      ASSERT_EQ(Sorted(got), OracleSelect(plain, p, &db)) << "step " << step;
    } else if (dice < 0.85) {
      const Value v = rng.UniformInt64(0, domain);
      index.Insert({v});
      plain.AddRow({v});
    } else {
      const auto tid =
          static_cast<TupleId>(rng.UniformInt(0, db.num_rows() - 1));
      if (db.IsLive(tid)) index.Delete(tid);
    }
    ASSERT_TRUE(index.pop(0).Validate().ok()) << "step " << step;
    ASSERT_TRUE(index.pop(0).ValidateAgainstPlain(plain.column(0)).ok())
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PopFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

TEST(IoFuzzTest, MutatedSnapshotsErrorOutCleanly) {
  Rng data_rng(1);
  PlainTable plain = testutil::RandomTable(150, 1, &data_rng, 0, 1000);
  auto db = CipherbaseEdbms::FromPlainTable(9, plain);
  PrkbIndex index(&db);
  index.EnableAttr(0);
  workload::QueryGen gen(0, 1000, 2);
  for (int i = 0; i < 25; ++i) {
    const auto p = gen.RandomComparison(0);
    index.Select(db.MakeComparison(p.attr, p.op, p.lo));
  }
  const std::string path = "/tmp/prkb_fuzz_snapshot.bin";
  ASSERT_TRUE(SavePrkb(index, path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  Rng rng(3);
  int clean_failures = 0;
  for (int iter = 0; iter < 200; ++iter) {
    auto mutated = bytes;
    // Flip a few bytes and/or truncate.
    const int flips = 1 + static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.UniformInt(0, mutated.size() - 1)] ^=
          static_cast<uint8_t>(1 + rng.UniformInt(0, 254));
    }
    if (rng.Bernoulli(0.3)) {
      mutated.resize(rng.UniformInt(0, mutated.size()));
    }
    const std::string mpath = "/tmp/prkb_fuzz_mutated.bin";
    std::FILE* mf = std::fopen(mpath.c_str(), "wb");
    ASSERT_NE(mf, nullptr);
    std::fwrite(mutated.data(), 1, mutated.size(), mf);
    std::fclose(mf);

    PrkbIndex victim(&db);
    const Status s = LoadPrkb(&victim, mpath);  // must not crash
    clean_failures += !s.ok();
    // When a mutation slips past all checks the loaded chain must still be
    // structurally valid (Validate runs inside DecodeFrom).
    std::remove(mpath.c_str());
  }
  // Many flips land in opaque payload bytes (sealed trapdoors, spare tuple-id
  // space) and legitimately decode; the decoder's real obligations are "never
  // crash" (this test ran to completion) and "reject structural damage".
  // Truncations and length-field damage must still fail en masse.
  EXPECT_GT(clean_failures, 50);
  std::remove(path.c_str());
}

struct DistCase {
  workload::Distribution dist;
  uint64_t seed;
};

class DistributionSweepTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionSweepTest, ExactForEveryDistribution) {
  const DistCase param = GetParam();
  workload::SyntheticSpec spec;
  spec.rows = 400;
  spec.attrs = 2;
  spec.domain_lo = 0;
  spec.domain_hi = 100000;
  spec.dist = param.dist;
  spec.seed = param.seed;
  PlainTable plain = workload::MakeSyntheticTable(spec);
  auto db = CipherbaseEdbms::FromPlainTable(7, plain);
  PrkbIndex index(&db, PrkbOptions{.seed = param.seed});
  index.EnableAttr(0);
  index.EnableAttr(1);

  workload::QueryGen gen(0, 100000, param.seed + 1);
  for (int i = 0; i < 40; ++i) {
    const auto attr = static_cast<edbms::AttrId>(i % 2);
    const auto p = gen.RandomComparison(attr);
    const auto got = index.Select(db.MakeComparison(p.attr, p.op, p.lo));
    ASSERT_EQ(Sorted(got), OracleSelect(plain, p)) << "query " << i;
  }
  for (edbms::AttrId a = 0; a < 2; ++a) {
    EXPECT_TRUE(index.pop(a).ValidateAgainstPlain(plain.column(a)).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistributionSweepTest,
    ::testing::Values(DistCase{workload::Distribution::kUniform, 1},
                      DistCase{workload::Distribution::kNormal, 2},
                      DistCase{workload::Distribution::kCorrelated, 3},
                      DistCase{workload::Distribution::kAntiCorrelated, 4},
                      DistCase{workload::Distribution::kZipf, 5},
                      DistCase{workload::Distribution::kLogNormal, 6}));

}  // namespace
}  // namespace prkb::core
