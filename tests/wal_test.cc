// Durability tests for the PRKB write-ahead log (prkb/wal.h):
// crash-recovery differential (truncated-log replay is byte-identical to the
// uninterrupted run, with zero QPF spend), torn-tail severing, CRC-corruption
// severing, and compaction equivalence.
#include "prkb/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "edbms/cipherbase_qpf.h"
#include "prkb/prkb_io.h"
#include "prkb/selection.h"
#include "tests/test_util.h"

namespace prkb::core {
namespace {

namespace fs = std::filesystem;
using edbms::CompareOp;
using edbms::PlainPredicate;
using edbms::TupleId;

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

/// Deterministic byte image of the whole index: every enabled chain's
/// EncodeTo (memberships, cuts with ids, fast-path cache) in attr order.
std::vector<uint8_t> StateBytes(const PrkbIndex& index) {
  Encoder enc;
  for (edbms::AttrId attr : index.EnabledAttrs()) {
    enc.PutU32(attr);
    index.pop(attr).EncodeTo(&enc);
  }
  return enc.Release();
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Copies a WAL directory with the log truncated to `log_bytes`.
void CloneWalDir(const std::string& src, const std::string& dst,
                 size_t log_bytes) {
  fs::remove_all(dst);
  fs::create_directories(dst);
  if (fs::exists(src + "/snapshot.prkb")) {
    fs::copy_file(src + "/snapshot.prkb", dst + "/snapshot.prkb");
  }
  auto log = ReadFile(src + "/wal.log");
  if (log_bytes < log.size()) log.resize(log_bytes);
  WriteFile(dst + "/wal.log", log);
}

/// A deterministic mixed workload (selects that split chains, BETWEENs,
/// repeats that populate the fast-path cache, inserts, deletes). Returns the
/// state image and durable log size after every operation.
struct WorkloadTrace {
  std::vector<std::vector<uint8_t>> states;
  std::vector<size_t> log_sizes;
};

WorkloadTrace RunWorkload(edbms::CipherbaseEdbms* db, PrkbIndex* index,
                          const std::string& wal_dir) {
  WorkloadTrace trace;
  auto checkpoint = [&] {
    trace.states.push_back(StateBytes(*index));
    trace.log_sizes.push_back(fs::file_size(wal_dir + "/wal.log"));
  };
  const std::vector<edbms::Value> cuts = {200, 500, 800, 350, 650, 500};
  for (const edbms::Value v : cuts) {
    index->Select(db->MakeComparison(0, CompareOp::kGe, v));
    checkpoint();
    index->Select(db->MakeComparison(1, CompareOp::kLt, v + 37));
    checkpoint();
  }
  index->Select(db->MakeBetween(0, 300, 700));
  checkpoint();
  index->Insert({123, 456});
  checkpoint();
  index->Insert({999, 1});
  checkpoint();
  index->Delete(3);
  checkpoint();
  index->Delete(17);
  checkpoint();
  // Repeats: fast-path remember records and zero-QPF answers.
  index->Select(db->MakeComparison(0, CompareOp::kGe, 500));
  checkpoint();
  index->Select(db->MakeBetween(0, 300, 700));
  checkpoint();
  return trace;
}

class WalTest : public testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2026);
    plain_ = testutil::RandomTable(240, 2, &rng, 0, 999);
    db_ = std::make_unique<edbms::CipherbaseEdbms>(
        edbms::CipherbaseEdbms::FromPlainTable(77, plain_));
  }

  edbms::PlainTable plain_{2};
  std::unique_ptr<edbms::CipherbaseEdbms> db_;
};

TEST_F(WalTest, CrashRecoveryDifferential) {
  const std::string dir = FreshDir("wal_diff");
  PrkbIndex live(db_.get());
  WalOptions opts;
  opts.fsync_on_commit = false;  // keep the differential sweep fast
  opts.compact_threshold_bytes = 0;
  auto wal = PrkbWal::Open(&live, dir, opts);
  ASSERT_TRUE(wal.ok()) << wal.status().message();
  live.EnableAttr(0);
  live.EnableAttr(1);
  ASSERT_TRUE((*wal)->Commit().ok());

  const WorkloadTrace trace = RunWorkload(db_.get(), &live, dir);

  // Kill the process at every commit boundary: a WAL clone truncated to that
  // durable frontier must recover to the exact bytes the live index had —
  // chains, memberships, cut ids, fast-path cache — without one QPF call.
  for (size_t i = 0; i < trace.states.size(); ++i) {
    const std::string rdir = FreshDir("wal_diff_replay");
    CloneWalDir(dir, rdir, trace.log_sizes[i]);
    PrkbIndex recovered(db_.get());
    const uint64_t qpf_before = db_->uses();
    auto rwal = PrkbWal::Open(&recovered, rdir, opts);
    ASSERT_TRUE(rwal.ok()) << "checkpoint " << i << ": "
                           << rwal.status().message();
    EXPECT_EQ(db_->uses(), qpf_before) << "recovery spent QPF";
    EXPECT_GT((*rwal)->stats().replayed_records, 0u);
    EXPECT_EQ(StateBytes(recovered), trace.states[i]) << "checkpoint " << i;
    for (edbms::AttrId attr : recovered.EnabledAttrs()) {
      EXPECT_TRUE(recovered.pop(attr).Validate().ok());
    }
  }
}

TEST_F(WalTest, TornTailSeversAtLastGoodRecord) {
  const std::string dir = FreshDir("wal_torn");
  WalOptions opts;
  opts.fsync_on_commit = false;
  opts.compact_threshold_bytes = 0;
  std::vector<uint8_t> final_state;
  {
    PrkbIndex live(db_.get());
    auto wal = PrkbWal::Open(&live, dir, opts);
    ASSERT_TRUE(wal.ok());
    live.EnableAttr(0);
    RunWorkload(db_.get(), &live, dir);
    final_state = StateBytes(live);
  }
  const auto log = ReadFile(dir + "/wal.log");
  ASSERT_GT(log.size(), 64u);

  // Every possible torn tail — truncation at each byte offset past the
  // header — must recover to a valid prefix state, never fail or crash.
  for (size_t cut = 8; cut <= log.size(); cut += 7) {
    const std::string rdir = FreshDir("wal_torn_replay");
    CloneWalDir(dir, rdir, cut);
    PrkbIndex recovered(db_.get());
    auto rwal = PrkbWal::Open(&recovered, rdir, opts);
    ASSERT_TRUE(rwal.ok()) << "cut at " << cut << ": "
                           << rwal.status().message();
    // A cut inside the very first record recovers an empty index (the
    // enable itself was not durable yet) — also a valid prefix state.
    if (recovered.IsEnabled(0)) {
      ASSERT_TRUE(recovered.pop(0).Validate().ok());
    }
    // The severed log was truncated on disk to its last good record, so a
    // second recovery replays the identical state.
    const auto once = StateBytes(recovered);
    PrkbIndex again(db_.get());
    auto rwal2 = PrkbWal::Open(&again, rdir, opts);
    ASSERT_TRUE(rwal2.ok());
    EXPECT_EQ(StateBytes(again), once);
  }
  // An untouched log still recovers the full final state.
  const std::string rdir = FreshDir("wal_torn_full");
  CloneWalDir(dir, rdir, log.size());
  PrkbIndex recovered(db_.get());
  auto rwal = PrkbWal::Open(&recovered, rdir, opts);
  ASSERT_TRUE(rwal.ok());
  EXPECT_EQ(StateBytes(recovered), final_state);
}

TEST_F(WalTest, CrcCorruptionSeversNotCrashes) {
  const std::string dir = FreshDir("wal_crc");
  WalOptions opts;
  opts.fsync_on_commit = false;
  opts.compact_threshold_bytes = 0;
  {
    PrkbIndex live(db_.get());
    auto wal = PrkbWal::Open(&live, dir, opts);
    ASSERT_TRUE(wal.ok());
    live.EnableAttr(0);
    RunWorkload(db_.get(), &live, dir);
  }
  const auto log = ReadFile(dir + "/wal.log");

  // Flip one byte in the middle of the record stream: recovery must sever at
  // (or before) the flipped frame and still produce a valid chain.
  for (const double frac : {0.3, 0.6, 0.9}) {
    auto bad = log;
    const size_t at = 8 + static_cast<size_t>(
                              static_cast<double>(bad.size() - 9) * frac);
    bad[at] ^= 0x41;
    const std::string rdir = FreshDir("wal_crc_replay");
    CloneWalDir(dir, rdir, 0);
    WriteFile(rdir + "/wal.log", bad);
    PrkbIndex recovered(db_.get());
    auto rwal = PrkbWal::Open(&recovered, rdir, opts);
    ASSERT_TRUE(rwal.ok()) << rwal.status().message();
    EXPECT_TRUE(recovered.pop(0).Validate().ok());
    // Severed: the replayed record count is below the pristine log's.
    PrkbIndex full(db_.get());
    const std::string fdir = FreshDir("wal_crc_full");
    CloneWalDir(dir, fdir, log.size());
    auto fwal = PrkbWal::Open(&full, fdir, opts);
    ASSERT_TRUE(fwal.ok());
    EXPECT_LT((*rwal)->stats().replayed_records,
              (*fwal)->stats().replayed_records);
  }
}

TEST_F(WalTest, CompactionPreservesStateAndTruncatesLog) {
  const std::string dir = FreshDir("wal_compact");
  WalOptions opts;
  opts.fsync_on_commit = false;
  opts.compact_threshold_bytes = 0;
  PrkbIndex live(db_.get());
  auto wal = PrkbWal::Open(&live, dir, opts);
  ASSERT_TRUE(wal.ok());
  live.EnableAttr(0);
  live.EnableAttr(1);
  RunWorkload(db_.get(), &live, dir);
  const auto before = StateBytes(live);
  ASSERT_GT(fs::file_size(dir + "/wal.log"), 8u);

  ASSERT_TRUE((*wal)->Compact().ok());
  EXPECT_EQ(fs::file_size(dir + "/wal.log"), 8u);  // back to the header
  EXPECT_TRUE(fs::exists(dir + "/snapshot.prkb"));
  EXPECT_EQ((*wal)->stats().compactions, 1u);

  // Recovery now costs one snapshot load and still lands on the same bytes.
  PrkbIndex recovered(db_.get());
  auto rwal = PrkbWal::Open(&recovered, dir, opts);
  ASSERT_TRUE(rwal.ok());
  EXPECT_EQ((*rwal)->stats().replayed_records, 0u);
  EXPECT_EQ(StateBytes(recovered), before);

  // And post-compaction mutations keep logging on the fresh tail. The two
  // indexes now share one WAL dir, so only `recovered` may keep writing.
  wal->reset();
  recovered.Select(db_->MakeComparison(0, CompareOp::kGe, 111));
  EXPECT_GT(fs::file_size(dir + "/wal.log"), 8u);
}

TEST_F(WalTest, AutoCompactionTriggersAtThreshold) {
  const std::string dir = FreshDir("wal_auto");
  WalOptions opts;
  opts.fsync_on_commit = false;
  opts.compact_threshold_bytes = 512;  // tiny: force frequent folding
  PrkbIndex live(db_.get());
  auto wal = PrkbWal::Open(&live, dir, opts);
  ASSERT_TRUE(wal.ok());
  live.EnableAttr(0);
  live.EnableAttr(1);
  RunWorkload(db_.get(), &live, dir);
  EXPECT_GT((*wal)->stats().compactions, 0u);

  PrkbIndex recovered(db_.get());
  auto rwal = PrkbWal::Open(&recovered, dir, opts);
  ASSERT_TRUE(rwal.ok());
  EXPECT_EQ(StateBytes(recovered), StateBytes(live));
}

TEST_F(WalTest, FirstAttachToWarmIndexSnapshotsWholesale) {
  // Chains that predate the WAL cannot be reconstructed from init records
  // alone (their cuts and cache predate the log): Open() must capture them
  // in a snapshot immediately.
  PrkbIndex live(db_.get());
  live.EnableAttr(0);
  live.Select(db_->MakeComparison(0, CompareOp::kGe, 500));
  live.Select(db_->MakeBetween(0, 250, 750));
  const auto warm = StateBytes(live);

  const std::string dir = FreshDir("wal_warm");
  WalOptions opts;
  opts.fsync_on_commit = false;
  auto wal = PrkbWal::Open(&live, dir, opts);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(fs::exists(dir + "/snapshot.prkb"));

  PrkbIndex recovered(db_.get());
  auto rwal = PrkbWal::Open(&recovered, dir, opts);
  ASSERT_TRUE(rwal.ok());
  EXPECT_EQ(StateBytes(recovered), warm);
}

TEST_F(WalTest, RepeatPredicateStaysZeroQpfAfterRecovery)  {
  // The fast-path cache survives the log: a predicate answered before the
  // crash is answered after recovery with zero QPF uses — the PRKB's whole
  // value proposition, now durable.
  const std::string dir = FreshDir("wal_fastpath");
  WalOptions opts;
  opts.fsync_on_commit = false;
  const auto td_cmp = db_->MakeComparison(0, CompareOp::kGe, 444);
  const auto td_btw = db_->MakeBetween(0, 200, 600);
  std::vector<TupleId> cmp_win, btw_win;
  {
    PrkbIndex live(db_.get());
    auto wal = PrkbWal::Open(&live, dir, opts);
    ASSERT_TRUE(wal.ok());
    live.EnableAttr(0);
    cmp_win = testutil::Sorted(live.Select(td_cmp));
    btw_win = testutil::Sorted(live.Select(td_btw));
  }
  PrkbIndex recovered(db_.get());
  auto rwal = PrkbWal::Open(&recovered, dir, opts);
  ASSERT_TRUE(rwal.ok());
  edbms::SelectionStats stats;
  EXPECT_EQ(testutil::Sorted(recovered.Select(td_cmp, &stats)), cmp_win);
  EXPECT_EQ(stats.qpf_uses, 0u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(testutil::Sorted(recovered.Select(td_btw, &stats)), btw_win);
  EXPECT_EQ(stats.qpf_uses, 0u);
}

}  // namespace
}  // namespace prkb::core
